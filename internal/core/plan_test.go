package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
	"repro/internal/situation"
	"repro/internal/workload"
)

// assertSameRanking fails unless the two result lists agree in order, ids
// and scores (within eps — the plan may associate floating-point products
// differently than the reference when its candidate-independent partition
// is coarser than the per-candidate one).
func assertSameRanking(t *testing.T, label string, got, want []Result, eps float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Abs(got[i].Score-want[i].Score) > eps {
			t.Fatalf("%s: result %d = %s:%g, want %s:%g",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// correlatedSetup builds a small space exercising every structure the plan
// compiler must honour: an exclusive sensor group in the context, two rules
// whose preferences share a basic event (a correlated doc cluster), an
// independent rule, and a rule whose context cannot apply (pruned).
func correlatedSetup(t *testing.T) (*mapping.Loader, []prefs.Rule) {
	t.Helper()
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []string{"Doc", "F1", "F2", "F3"} {
		must(l.DeclareConcept(c))
	}
	must(db.Space().Declare("shared", 0.6))
	must(db.Space().Declare("solo_a", 0.7))
	must(db.Space().Declare("solo_b", 0.4))
	for _, d := range []string{"d1", "d2", "d3"} {
		must(l.AssertConcept("Doc", d, nil))
	}
	// d1's F1 and F2 hinge on one event (correlated cluster); d2 carries
	// independent uncertainty; d3 carries nothing.
	must(l.AssertConcept("F1", "d1", event.Basic("shared")))
	must(l.AssertConcept("F2", "d1", event.Basic("shared")))
	must(l.AssertConcept("F1", "d2", event.Basic("solo_a")))
	must(l.AssertConcept("F3", "d2", event.Basic("solo_b")))
	// Context: an exclusive location group plus an uncertain independent
	// concept. "Nowhere" stays unasserted so its rule prunes.
	ctx := situation.New("u").
		AddExclusive("location", []string{"Kitchen", "Living"}, []float64{0.55, 0.35}).
		Add("Weekend", 0.8)
	must(ctx.Apply(l))
	rules := []prefs.Rule{
		{Name: "r1", Context: dl.Atom("Kitchen"), Preference: dl.Atom("F1"), Sigma: 0.9},
		{Name: "r2", Context: dl.Atom("Living"), Preference: dl.Atom("F2"), Sigma: 0.7},
		{Name: "r3", Context: dl.Atom("Weekend"), Preference: dl.Atom("F3"), Sigma: 0.65},
		{Name: "r4", Context: dl.Atom("Nowhere"), Preference: dl.Atom("F1"), Sigma: 0.3},
	}
	must(l.DeclareConcept("Nowhere"))
	return l, rules
}

// TestPlanMatchesNaive checks the compiled plan against the literal §3.3
// reference over correlated doc clusters, an exclusive context sensor
// group, an independent rule and a pruned rule — including Explain.
func TestPlanMatchesNaive(t *testing.T) {
	l, rules := correlatedSetup(t)
	req := Request{User: "u", Target: dl.Atom("Doc"), Rules: rules, Explain: true}

	naive, err := NewNaiveRanker(l).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompilePlan(l, "u", rules)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc"), Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, "plan vs naive", got, naive, 1e-9)

	// The pruned rule must appear as such in the plan's explanations.
	for _, res := range got {
		var sawPruned bool
		if res.Explanation == nil || len(res.Explanation.Rules) != len(rules) {
			t.Fatalf("explanation missing rules for %s", res.ID)
		}
		for _, rc := range res.Explanation.Rules {
			if rc.Rule == "r4" {
				sawPruned = rc.Pruned
			}
		}
		if !sawPruned {
			t.Fatalf("rule r4 not pruned in %s's explanation", res.ID)
		}
	}

	// The same request through the (now plan-backed) factorized ranker.
	fact, err := NewFactorizedRanker(l).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, "factorized vs naive", fact, naive, 1e-9)
}

// TestPlanMatchesLegacyFactorized compares the compiled plan against the
// retained per-candidate implementation on the TV-watcher workload with
// uncertain context (no pruning) and uncertain features.
func TestPlanMatchesLegacyFactorized(t *testing.T) {
	const k = 6
	d, err := workload.Generate(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyBenchContext(k, false); err != nil {
		t.Fatal(err)
	}
	rules, err := d.Rules(k)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{User: d.User, Target: dl.Atom("TvProgram"), Rules: rules, Explain: true}
	ranker := NewFactorizedRanker(d.Loader)

	legacy, err := ranker.legacyRank(req)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := ranker.Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	// Compare per-candidate scores by id: the plan's candidate-independent
	// partition can associate float products differently, which may swap
	// candidates whose scores tie to ~1e-17 in the sorted order.
	assertSameScores(t, "plan vs legacy", planned, legacy, 1e-12)
	legacyEx := make(map[string]*Explanation, len(legacy))
	for _, r := range legacy {
		legacyEx[r.ID] = r.Explanation
	}
	for _, r := range planned {
		le, pe := legacyEx[r.ID], r.Explanation
		if le == nil || len(le.Rules) != len(pe.Rules) {
			t.Fatalf("explanation length mismatch for %s", r.ID)
		}
		for j := range le.Rules {
			if le.Rules[j] != pe.Rules[j] {
				t.Fatalf("explanation mismatch for %s rule %d: %+v vs %+v",
					r.ID, j, le.Rules[j], pe.Rules[j])
			}
		}
	}

	// Explicit candidate lists rank identically too (the §5 shape).
	ids := []string{"tv000", "tv003", "tv007", "no-such-doc"}
	legacy, err = ranker.legacyRank(Request{User: d.User, Candidates: ids, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompilePlan(d.Loader, d.User, rules)
	if err != nil {
		t.Fatal(err)
	}
	planned, err = plan.Rank(PlanRequest{Candidates: ids})
	if err != nil {
		t.Fatal(err)
	}
	assertSameScores(t, "plan vs legacy candidates", planned, legacy, 1e-12)
}

// assertSameScores compares two result lists candidate by candidate,
// ignoring order differences between equal-scored candidates.
func assertSameScores(t *testing.T, label string, got, want []Result, eps float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	scores := make(map[string]float64, len(want))
	for _, r := range want {
		scores[r.ID] = r.Score
	}
	for _, r := range got {
		w, ok := scores[r.ID]
		if !ok || math.Abs(r.Score-w) > eps {
			t.Fatalf("%s: %s = %g, want %g", label, r.ID, r.Score, w)
		}
	}
}

// TestPlanAfterRetire pins the plan's context-epoch contract across a
// context re-apply (which retires the previous epoch's ctx_* events): the
// stale plan keeps answering with its compile-time context distribution —
// it froze those probabilities, so it cannot notice the retirement — and a
// fresh compile matches the reference under the new context. Callers that
// reuse plans must invalidate on every context epoch (the serve plan cache
// keys by it).
func TestPlanAfterRetire(t *testing.T) {
	d, err := workload.Generate(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyBenchContext(4, false); err != nil {
		t.Fatal(err)
	}
	rules, err := d.Rules(4)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := CompilePlan(d.Loader, d.User, rules)
	if err != nil {
		t.Fatal(err)
	}
	before, err := stale.Rank(PlanRequest{Target: dl.Atom("TvProgram")})
	if err != nil {
		t.Fatal(err)
	}

	// New context epoch with different probabilities (certain instead of
	// 0.9): the old ctx_* events are retired and the distribution changes.
	if err := d.ApplyBenchContext(4, true); err != nil {
		t.Fatal(err)
	}
	after, err := stale.Rank(PlanRequest{Target: dl.Atom("TvProgram")})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, "stale plan drifted from its compile-time context", after, before, 0)

	fresh, err := CompilePlan(d.Loader, d.User, rules)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Rank(PlanRequest{Target: dl.Atom("TvProgram")})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewNaiveRanker(d.Loader).Rank(Request{User: d.User, Target: dl.Atom("TvProgram"), Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, "post-retire plan vs naive", got, naive, 1e-9)
	// The context really changed: certain context must produce different
	// scores than the stale 0.9-context plan for at least one candidate.
	drifted := false
	for i := range got {
		if got[i].ID != before[i].ID || math.Abs(got[i].Score-before[i].Score) > 1e-9 {
			drifted = true
			break
		}
	}
	if !drifted {
		t.Fatal("re-applied context produced identical scores; test lost its teeth")
	}
}

// TestPlanClusterBound: more mutually correlated rules than the exact
// enumeration bound must fail at compile time, not per candidate.
func TestPlanClusterBound(t *testing.T) {
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	if err := l.DeclareConcept("Doc"); err != nil {
		t.Fatal(err)
	}
	if err := db.Space().Declare("shared", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.AssertConcept("Doc", "d", nil); err != nil {
		t.Fatal(err)
	}
	if err := situation.New("u").Certain("Ctx").Apply(l); err != nil {
		t.Fatal(err)
	}
	var rules []prefs.Rule
	for i := 0; i < maxClusterRules+1; i++ {
		c := string(rune('A' + i))
		if err := l.DeclareConcept("F" + c); err != nil {
			t.Fatal(err)
		}
		// Every preference hinges on the same event: one giant cluster.
		if err := l.AssertConcept("F"+c, "d", event.Basic("shared")); err != nil {
			t.Fatal(err)
		}
		rules = append(rules, prefs.Rule{Name: "r" + c, Context: dl.Atom("Ctx"), Preference: dl.Atom("F" + c), Sigma: 0.6})
	}
	if _, err := CompilePlan(l, "u", rules); err == nil {
		t.Fatal("oversized correlation cluster compiled")
	} else if !strings.Contains(err.Error(), "exceeds the exact-enumeration bound") {
		t.Fatalf("unexpected compile error: %v", err)
	}
	// Every rule genuinely shares one event, so the per-candidate fallback
	// hits the same bound: Rank must fail like the pre-plan path did.
	if _, err := NewFactorizedRanker(l).Rank(Request{User: "u", Target: dl.Atom("Doc"), Rules: rules}); err == nil {
		t.Fatal("genuinely oversized cluster ranked")
	}
}

// TestPlanClusterBoundFallback: rules chained together only through
// *different* documents' events exceed the bound under the coarse
// footprint partition but stay in ≤2-rule clusters per candidate — Rank
// must fall back to per-candidate clustering and succeed.
func TestPlanClusterBoundFallback(t *testing.T) {
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	if err := l.DeclareConcept("Doc"); err != nil {
		t.Fatal(err)
	}
	if err := situation.New("u").Certain("Ctx").Apply(l); err != nil {
		t.Fatal(err)
	}
	n := maxClusterRules + 1
	var rules []prefs.Rule
	for i := 0; i < n; i++ {
		if err := l.DeclareConcept(fmt.Sprintf("F%02d", i)); err != nil {
			t.Fatal(err)
		}
		if err := db.Space().Declare(fmt.Sprintf("e%02d", i), 0.5); err != nil {
			t.Fatal(err)
		}
		rules = append(rules, prefs.Rule{
			Name: fmt.Sprintf("r%02d", i), Context: dl.Atom("Ctx"),
			Preference: dl.Atom(fmt.Sprintf("F%02d", i)), Sigma: 0.6,
		})
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("d%02d", i)
		if err := l.AssertConcept("Doc", id, nil); err != nil {
			t.Fatal(err)
		}
		// Document d_i carries features F_i and F_{i+1}, both hinging on
		// e_i: rules i and i+1 couple through d_i, chaining all rules into
		// one coarse cluster while any single candidate couples only two.
		ev := event.Basic(fmt.Sprintf("e%02d", i))
		if err := l.AssertConcept(fmt.Sprintf("F%02d", i), id, ev); err != nil {
			t.Fatal(err)
		}
		if i+1 < n {
			if err := l.AssertConcept(fmt.Sprintf("F%02d", i+1), id, ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := CompilePlan(l, "u", rules); err == nil {
		t.Fatal("chained footprint cluster compiled")
	}
	results, err := NewFactorizedRanker(l).Rank(Request{User: "u", Target: dl.Atom("Doc"), Rules: rules})
	if err != nil {
		t.Fatalf("fallback rank failed: %v", err)
	}
	if len(results) != n {
		t.Fatalf("%d results, want %d", len(results), n)
	}
	for _, r := range results {
		if r.Score <= 0 || r.Score > 1 {
			t.Fatalf("score %g for %s outside (0,1]", r.Score, r.ID)
		}
	}
}

// TestClusterRulesPropagatesError: an undeclared (e.g. retired) basic event
// inside a membership event must surface as an error from both the legacy
// clustering and plan compilation — not be silently treated as "dependent".
func TestClusterRulesPropagatesError(t *testing.T) {
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	for _, c := range []string{"Doc", "F1", "F2"} {
		if err := l.DeclareConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AssertConcept("Doc", "d", nil); err != nil {
		t.Fatal(err)
	}
	if err := situation.New("u").Certain("Ctx").Apply(l); err != nil {
		t.Fatal(err)
	}
	// "ghost" is never declared in the event space.
	if err := l.AssertConcept("F1", "d", event.Basic("ghost")); err != nil {
		t.Fatal(err)
	}
	if err := l.AssertConcept("F2", "d", nil); err != nil {
		t.Fatal(err)
	}
	rules := []prefs.Rule{
		{Name: "r1", Context: dl.Atom("Ctx"), Preference: dl.Atom("F1"), Sigma: 0.8},
		{Name: "r2", Context: dl.Atom("Ctx"), Preference: dl.Atom("F2"), Sigma: 0.7},
	}
	if _, err := CompilePlan(l, "u", rules); err == nil {
		t.Fatal("plan compiled over an undeclared basic event")
	} else if !strings.Contains(err.Error(), "not declared") {
		t.Fatalf("compile error = %v, want 'not declared'", err)
	}
	ranker := NewFactorizedRanker(l)
	req := Request{User: "u", Target: dl.Atom("Doc"), Rules: rules}
	if _, err := ranker.legacyRank(req); err == nil {
		t.Fatal("legacy clustering swallowed the undeclared-event error")
	} else if !strings.Contains(err.Error(), "not declared") {
		t.Fatalf("legacy error = %v, want 'not declared'", err)
	}
}

// TestPlanGroupRank: the group ranker's plan fast path must agree with
// ranking each member separately.
func TestPlanGroupRank(t *testing.T) {
	l, rules := correlatedSetup(t)
	// A second situated user sharing the snapshot.
	ctx := situation.New("u").
		AddExclusive("location", []string{"Kitchen", "Living"}, []float64{0.55, 0.35}).
		Add("Weekend", 0.8).
		CertainFor("v", "Weekend")
	if err := ctx.Apply(l); err != nil {
		t.Fatal(err)
	}
	ranker := NewFactorizedRanker(l)
	req := GroupRequest{
		Users:    []string{"u", "v"},
		Target:   dl.Atom("Doc"),
		RulesFor: map[string][]prefs.Rule{"u": rules, "v": rules[2:3]},
		Policy:   PolicyAverage,
	}
	got, err := GroupRank(ranker, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, user := range req.Users {
		solo, err := ranker.Rank(Request{User: user, Target: req.Target, Rules: req.RulesFor[user]})
		if err != nil {
			t.Fatal(err)
		}
		scores := make(map[string]float64, len(solo))
		for _, r := range solo {
			scores[r.ID] = r.Score
		}
		for _, gr := range got {
			if math.Abs(gr.PerMember[user]-scores[gr.ID]) > 1e-12 {
				t.Fatalf("group member %s score for %s = %g, solo = %g",
					user, gr.ID, gr.PerMember[user], scores[gr.ID])
			}
		}
	}
}
