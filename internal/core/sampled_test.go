package core

import (
	"math"
	"testing"

	"repro/internal/dl"
)

func TestSampledRankerApproximatesTable1(t *testing.T) {
	l := paperSetup(t)
	r := NewSampledRanker(l, 60000, 1)
	results, err := r.Rank(paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %v", results)
	}
	for _, res := range results {
		want := wantTable1[res.ID]
		if math.Abs(res.Score-want) > 0.01 {
			t.Fatalf("score(%s) = %.4f, want ≈%.4f", res.ID, res.Score, want)
		}
	}
	// Ranking order is preserved despite sampling noise.
	if results[0].ID != "Channel5News" || results[3].ID != "MPFS" {
		t.Fatalf("order = %v", results)
	}
}

func TestSampledRankerDeterministicPerSeed(t *testing.T) {
	l := paperSetup(t)
	a, err := NewSampledRanker(l, 2000, 7).Rank(paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSampledRanker(l, 2000, 7).Rank(paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			t.Fatalf("nondeterministic: %v vs %v", a[i], b[i])
		}
	}
}

func TestSampledRankerErrorShrinksWithSamples(t *testing.T) {
	l := paperSetup(t)
	req := paperRequest(t)
	errAt := func(samples int) float64 {
		res, err := NewSampledRanker(l, samples, 11).Rank(req)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, r := range res {
			if d := math.Abs(r.Score - wantTable1[r.ID]); d > worst {
				worst = d
			}
		}
		return worst
	}
	small := errAt(200)
	large := errAt(50000)
	if large > small+1e-9 && large > 0.01 {
		t.Fatalf("error did not shrink: %g (200) vs %g (50000)", small, large)
	}
}

func TestSampledRankerDefaultsAndExplain(t *testing.T) {
	l := paperSetup(t)
	req := paperRequest(t)
	req.Explain = true
	r := NewSampledRanker(l, 0, 3) // 0 → DefaultSamples
	results, err := r.Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Explanation == nil || len(results[0].Explanation.Rules) != 2 {
		t.Fatalf("explanation missing: %v", results[0])
	}
	if r.Name() != "sampled" {
		t.Fatalf("name = %q", r.Name())
	}
}

func TestSampledRankerValidation(t *testing.T) {
	l := paperSetup(t)
	if _, err := NewSampledRanker(l, 100, 1).Rank(Request{Target: dl.Atom("TvProgram")}); err == nil {
		t.Fatal("missing user accepted")
	}
}
