package core

import (
	"math"
	"testing"

	"repro/internal/dl"
	"repro/internal/prefs"
	"repro/internal/situation"
)

// buildGroupRequest extends the paper example with a second user, Mary,
// who likes news less and human interest not at all.
func buildGroupRequest(t *testing.T) (GroupRequest, Ranker) {
	t.Helper()
	l := paperSetup(t)
	// One context snapshot covering both users: they share the weekend
	// breakfast (a single Apply replaces the previous context, so a group
	// context must carry every member's memberships).
	ctx := situation.New("peter").Certain("Weekend").Certain("Breakfast").
		CertainFor("mary", "Weekend").CertainFor("mary", "Breakfast")
	if err := ctx.Apply(l); err != nil {
		t.Fatal(err)
	}
	peterRules := paperRules(t)
	maryRules := []prefs.Rule{
		prefs.MustParseRule("RULE M1 WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.5"),
	}
	req := GroupRequest{
		Users:  []string{"peter", "mary"},
		Target: dl.Atom("TvProgram"),
		RulesFor: map[string][]prefs.Rule{
			"peter": peterRules,
			"mary":  maryRules,
		},
	}
	return req, NewFactorizedRanker(l)
}

func TestGroupRankConsensus(t *testing.T) {
	req, ranker := buildGroupRequest(t)
	results, err := GroupRank(ranker, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %v", results)
	}
	// Consensus = product of member scores; check one by hand:
	// BBCNews: peter 0.18, mary 0.5 → 0.09.
	for _, r := range results {
		if r.ID == "BBCNews" {
			if math.Abs(r.PerMember["peter"]-0.18) > 1e-9 || math.Abs(r.PerMember["mary"]-0.5) > 1e-9 {
				t.Fatalf("per-member = %v", r.PerMember)
			}
			if math.Abs(r.Score-0.09) > 1e-9 {
				t.Fatalf("consensus = %g", r.Score)
			}
		}
	}
	// Ordering is descending.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Fatalf("not sorted: %v", results)
		}
	}
}

func TestGroupRankPolicies(t *testing.T) {
	req, ranker := buildGroupRequest(t)

	req.Policy = PolicyAverage
	avg, err := GroupRank(ranker, req)
	if err != nil {
		t.Fatal(err)
	}
	req.Policy = PolicyLeastMisery
	lm, err := GroupRank(ranker, req)
	if err != nil {
		t.Fatal(err)
	}
	find := func(rs []GroupResult, id string) GroupResult {
		for _, r := range rs {
			if r.ID == id {
				return r
			}
		}
		t.Fatalf("%s missing", id)
		return GroupResult{}
	}
	bbcAvg := find(avg, "BBCNews")
	if math.Abs(bbcAvg.Score-(0.18+0.5)/2) > 1e-9 {
		t.Fatalf("average = %g", bbcAvg.Score)
	}
	bbcLM := find(lm, "BBCNews")
	if math.Abs(bbcLM.Score-0.18) > 1e-9 {
		t.Fatalf("least misery = %g", bbcLM.Score)
	}
}

func TestGroupRankThresholdLimitAndValidation(t *testing.T) {
	req, ranker := buildGroupRequest(t)
	req.Limit = 2
	results, err := GroupRank(ranker, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("limit ignored: %v", results)
	}
	req.Limit = 0
	req.Threshold = 0.2
	results, err = GroupRank(ranker, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Score <= 0.2 {
			t.Fatalf("threshold ignored: %v", r)
		}
	}
	if _, err := GroupRank(ranker, GroupRequest{Target: dl.Atom("TvProgram")}); err == nil {
		t.Fatal("no users accepted")
	}
	if _, err := GroupRank(ranker, GroupRequest{Users: []string{"peter"}}); err == nil {
		t.Fatal("no target accepted")
	}
	req.Policy = "dictatorship"
	if _, err := GroupRank(ranker, req); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestGroupRankMemberWithoutRules(t *testing.T) {
	req, ranker := buildGroupRequest(t)
	delete(req.RulesFor, "mary") // mary has no rules: every doc scores 1
	results, err := GroupRank(ranker, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if math.Abs(r.PerMember["mary"]-1) > 1e-9 {
			t.Fatalf("ruleless member score = %v", r)
		}
		if math.Abs(r.Score-r.PerMember["peter"]) > 1e-9 {
			t.Fatalf("consensus with neutral member: %v", r)
		}
	}
}
