package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
	"repro/internal/situation"
)

// paperSetup loads the paper's §4.2 example: Table 1's four programs with
// their uncertain features, and the context "breakfast during the weekend"
// (certain).
func paperSetup(t testing.TB) *mapping.Loader {
	t.Helper()
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	for _, c := range []string{"TvProgram"} {
		if err := l.DeclareConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []string{"hasGenre", "hasSubject"} {
		if err := l.DeclareRole(r); err != nil {
			t.Fatal(err)
		}
	}
	space := db.Space()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Table 1 probabilities.
	must(space.Declare("oprah_hi", 0.85))
	must(space.Declare("c5_hi", 0.95))
	must(space.Declare("c5_news", 0.85))
	for _, p := range []string{"Oprah", "BBCNews", "Channel5News", "MPFS"} {
		must(l.AssertConcept("TvProgram", p, nil))
	}
	must(l.AssertRole("hasGenre", "Oprah", "HUMAN-INTEREST", event.Basic("oprah_hi")))
	must(l.AssertRole("hasGenre", "Channel5News", "HUMAN-INTEREST", event.Basic("c5_hi")))
	must(l.AssertRole("hasSubject", "BBCNews", "News", nil))
	must(l.AssertRole("hasSubject", "Channel5News", "News", event.Basic("c5_news")))
	// Context: breakfast during the weekend, certain.
	must(situation.New("peter").Certain("Weekend").Certain("Breakfast").Apply(l))
	return l
}

func paperRules(t testing.TB) []prefs.Rule {
	t.Helper()
	return []prefs.Rule{
		prefs.MustParseRule("RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8"),
		prefs.MustParseRule("RULE R2 WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.9"),
	}
}

func paperRequest(t testing.TB) Request {
	return Request{User: "peter", Target: dl.Atom("TvProgram"), Rules: paperRules(t)}
}

// wantTable1 holds the paper's hand-computed scores (§4.2).
var wantTable1 = map[string]float64{
	"Channel5News": 0.6006,
	"BBCNews":      0.18,
	"Oprah":        0.071,
	"MPFS":         0.02,
}

func rankers(l *mapping.Loader) []Ranker {
	return []Ranker{NewNaiveRanker(l), NewFactorizedRanker(l), NewViewRanker(l)}
}

func TestPaperWorkedExampleAllRankers(t *testing.T) {
	l := paperSetup(t)
	for _, r := range rankers(l) {
		results, err := r.Rank(paperRequest(t))
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if len(results) != 4 {
			t.Fatalf("%s: got %d results", r.Name(), len(results))
		}
		// Ranking order matches the paper.
		wantOrder := []string{"Channel5News", "BBCNews", "Oprah", "MPFS"}
		for i, id := range wantOrder {
			if results[i].ID != id {
				t.Fatalf("%s: rank %d = %s, want %s", r.Name(), i, results[i].ID, id)
			}
			if math.Abs(results[i].Score-wantTable1[id]) > 1e-9 {
				t.Fatalf("%s: score(%s) = %.6f, want %.4f", r.Name(), id, results[i].Score, wantTable1[id])
			}
		}
	}
}

func TestThresholdMatchesIntroQuery(t *testing.T) {
	// The paper's introductory query keeps preferencescore > 0.5.
	l := paperSetup(t)
	for _, r := range rankers(l) {
		req := paperRequest(t)
		req.Threshold = 0.5
		results, err := r.Rank(req)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if len(results) != 1 || results[0].ID != "Channel5News" {
			t.Fatalf("%s: results = %v", r.Name(), results)
		}
	}
}

func TestLimit(t *testing.T) {
	l := paperSetup(t)
	for _, r := range rankers(l) {
		req := paperRequest(t)
		req.Limit = 2
		results, err := r.Rank(req)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if len(results) != 2 || results[0].ID != "Channel5News" || results[1].ID != "BBCNews" {
			t.Fatalf("%s: results = %v", r.Name(), results)
		}
	}
}

func TestNoRulesScoresOne(t *testing.T) {
	// Equation (4) over an empty H is the empty product: every document is
	// "ideal" with probability 1 — the degenerate case §4.1 warns about.
	l := paperSetup(t)
	for _, r := range rankers(l) {
		results, err := r.Rank(Request{User: "peter", Target: dl.Atom("TvProgram")})
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		for _, res := range results {
			if math.Abs(res.Score-1) > 1e-9 {
				t.Fatalf("%s: score = %v", r.Name(), res)
			}
		}
	}
}

func TestInapplicableRulePrunedToFactorOne(t *testing.T) {
	// A rule whose context cannot hold (Workday during the weekend) must
	// not change any score.
	l := paperSetup(t)
	if err := l.DeclareConcept("Workday"); err != nil {
		t.Fatal(err)
	}
	rules := append(paperRules(t),
		prefs.MustParseRule("RULE R3 WHEN Workday PREFER TvProgram WITH 0.99"))
	for _, r := range rankers(l) {
		results, err := r.Rank(Request{User: "peter", Target: dl.Atom("TvProgram"), Rules: rules})
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		for _, res := range results {
			if math.Abs(res.Score-wantTable1[res.ID]) > 1e-9 {
				t.Fatalf("%s: score(%s) = %g, want %g", r.Name(), res.ID, res.Score, wantTable1[res.ID])
			}
		}
	}
}

func TestDefaultRuleAppliesAlways(t *testing.T) {
	l := paperSetup(t)
	rules := []prefs.Rule{prefs.MustParseRule("RULE D WHEN TOP PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.9")}
	for _, r := range rankers(l) {
		results, err := r.Rank(Request{User: "peter", Target: dl.Atom("TvProgram"), Rules: rules})
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		scores := map[string]float64{}
		for _, res := range results {
			scores[res.ID] = res.Score
		}
		if math.Abs(scores["BBCNews"]-0.9) > 1e-9 {
			t.Fatalf("%s: BBCNews = %g, want 0.9", r.Name(), scores["BBCNews"])
		}
		if math.Abs(scores["MPFS"]-0.1) > 1e-9 {
			t.Fatalf("%s: MPFS = %g, want 0.1", r.Name(), scores["MPFS"])
		}
		// Channel5News: 0.85·0.9 + 0.15·0.1 = 0.78.
		if math.Abs(scores["Channel5News"]-0.78) > 1e-9 {
			t.Fatalf("%s: Channel5News = %g, want 0.78", r.Name(), scores["Channel5News"])
		}
	}
}

func TestUncertainContextConsistency(t *testing.T) {
	// With Breakfast only 60% likely, all rankers must still agree, and the
	// score must interpolate between the breakfast and no-breakfast worlds.
	l := paperSetup(t)
	if err := situation.New("peter").Certain("Weekend").Add("Breakfast", 0.6).Apply(l); err != nil {
		t.Fatal(err)
	}
	req := paperRequest(t)
	var base []Result
	for i, r := range rankers(l) {
		results, err := r.Rank(req)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if i == 0 {
			base = results
			continue
		}
		for j := range results {
			if results[j].ID != base[j].ID || math.Abs(results[j].Score-base[j].Score) > 1e-9 {
				t.Fatalf("%s disagrees with %s: %v vs %v", r.Name(), rankers(l)[0].Name(), results[j], base[j])
			}
		}
	}
	// BBCNews: R1 factor (1-0.8)=0.2 (weekend certain, no HI);
	// R2 factor: 0.6·0.9 + 0.4·1 = 0.94 → 0.188.
	for _, res := range base {
		if res.ID == "BBCNews" && math.Abs(res.Score-0.2*0.94) > 1e-9 {
			t.Fatalf("BBCNews = %g, want %g", res.Score, 0.2*0.94)
		}
	}
}

func TestDisjointFeaturesViaExclusiveEvents(t *testing.T) {
	// §3.2's disjointness: a program is a traffic bulletin or a weather
	// bulletin, never both. Model the memberships with one exclusive group
	// and check the rankers agree and respect the exclusivity.
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	l.DeclareConcept("TvProgram")
	l.DeclareConcept("Traffic")
	l.DeclareConcept("Weather")
	db.Space().DeclareExclusive([]string{"is_traffic", "is_weather"}, []float64{0.5, 0.4})
	l.AssertConcept("TvProgram", "bulletin", nil)
	l.AssertConcept("Traffic", "bulletin", event.Basic("is_traffic"))
	l.AssertConcept("Weather", "bulletin", event.Basic("is_weather"))
	situation.New("peter").Certain("MorningCtx").Apply(l)

	rules := []prefs.Rule{
		prefs.MustParseRule("RULE T WHEN MorningCtx PREFER Traffic WITH 0.8"),
		prefs.MustParseRule("RULE W WHEN MorningCtx PREFER Weather WITH 0.6"),
	}
	req := Request{User: "peter", Target: dl.Atom("TvProgram"), Rules: rules}
	// Exact expectation with the exclusive group:
	// states: traffic (0.5): 0.8·(1−0.6) ; weather (0.4): (1−0.8)·0.6 ;
	// neither (0.1): 0.2·0.4.
	want := 0.5*0.8*0.4 + 0.4*0.2*0.6 + 0.1*0.2*0.4
	for _, r := range rankers(l) {
		results, err := r.Rank(req)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if len(results) != 1 || math.Abs(results[0].Score-want) > 1e-9 {
			t.Fatalf("%s: results = %v, want score %g", r.Name(), results, want)
		}
	}
}

func TestExplanations(t *testing.T) {
	l := paperSetup(t)
	for _, r := range rankers(l) {
		req := paperRequest(t)
		req.Explain = true
		results, err := r.Rank(req)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		for _, res := range results {
			if res.Explanation == nil || len(res.Explanation.Rules) != 2 {
				t.Fatalf("%s: explanation missing on %v", r.Name(), res)
			}
		}
		// Channel5News contributions: R1 factor 0.95·0.8+0.05·0.2 = 0.77,
		// R2 factor 0.85·0.9+0.15·0.1 = 0.78; product 0.6006.
		top := results[0]
		f1, f2 := top.Explanation.Rules[0].Factor, top.Explanation.Rules[1].Factor
		if math.Abs(f1*f2-0.6006) > 1e-9 {
			t.Fatalf("%s: factors %g·%g != 0.6006", r.Name(), f1, f2)
		}
		if top.Explanation.Rules[0].String() == "" {
			t.Fatalf("%s: empty contribution string", r.Name())
		}
	}
}

func TestRequestValidation(t *testing.T) {
	l := paperSetup(t)
	for _, r := range rankers(l) {
		if _, err := r.Rank(Request{Target: dl.Atom("TvProgram")}); err == nil {
			t.Fatalf("%s: missing user accepted", r.Name())
		}
		if _, err := r.Rank(Request{User: "peter"}); err == nil {
			t.Fatalf("%s: missing target accepted", r.Name())
		}
		bad := Request{User: "peter", Target: dl.Atom("TvProgram"),
			Rules: []prefs.Rule{{Name: "bad", Context: dl.Top(), Preference: dl.Atom("TvProgram"), Sigma: 2}}}
		if _, err := r.Rank(bad); err == nil {
			t.Fatalf("%s: invalid sigma accepted", r.Name())
		}
	}
}

// TestRankersAgreeOnRandomInstances cross-validates the three rankers on
// randomized small instances: random feature probabilities, random σ,
// uncertain context.
func TestRankersAgreeOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		db := engine.New()
		l := mapping.NewLoader(db, nil)
		l.DeclareConcept("Doc")
		nFeat := 3
		feats := []string{"F0", "F1", "F2"}
		for _, f := range feats {
			l.DeclareConcept(f)
		}
		nDocs := 4
		for d := 0; d < nDocs; d++ {
			id := string(rune('a' + d))
			l.AssertConcept("Doc", id, nil)
			for fi := 0; fi < nFeat; fi++ {
				p := rng.Float64()
				evName := id + feats[fi]
				db.Space().Declare(evName, p)
				l.AssertConcept(feats[fi], id, event.Basic(evName))
			}
		}
		ctx := situation.New("u")
		ctx.Add("C0", rng.Float64())
		ctx.Add("C1", rng.Float64())
		ctx.Certain("C2")
		if err := ctx.Apply(l); err != nil {
			t.Fatal(err)
		}
		var rules []prefs.Rule
		for i := 0; i < 3; i++ {
			rules = append(rules, prefs.Rule{
				Name:       "R" + string(rune('0'+i)),
				Context:    dl.Atom("C" + string(rune('0'+i))),
				Preference: dl.Atom(feats[i]),
				Sigma:      rng.Float64(),
			})
		}
		req := Request{User: "u", Target: dl.Atom("Doc"), Rules: rules}
		var base []Result
		for i, r := range rankers(l) {
			results, err := r.Rank(req)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, r.Name(), err)
			}
			if i == 0 {
				base = results
				continue
			}
			for j := range results {
				if results[j].ID != base[j].ID || math.Abs(results[j].Score-base[j].Score) > 1e-9 {
					t.Fatalf("trial %d: %s disagrees at %d: %v vs %v",
						trial, r.Name(), j, results[j], base[j])
				}
			}
		}
	}
}

func TestSmoothedScore(t *testing.T) {
	// λ=1: pure query; λ=0: pure context; λ=0.5: geometric mean.
	s, err := SmoothedScore(0.4, 0.9, 1)
	if err != nil || math.Abs(s-0.4) > 1e-12 {
		t.Fatalf("λ=1: %g, %v", s, err)
	}
	s, _ = SmoothedScore(0.4, 0.9, 0)
	if math.Abs(s-0.9) > 1e-12 {
		t.Fatalf("λ=0: %g", s)
	}
	s, _ = SmoothedScore(0.25, 0.25, 0.5)
	if math.Abs(s-0.25) > 1e-12 {
		t.Fatalf("λ=0.5 equal inputs: %g", s)
	}
	if _, err := SmoothedScore(0.5, 0.5, 1.5); err == nil {
		t.Fatal("bad lambda accepted")
	}
	if _, err := SmoothedScore(-0.1, 0.5, 0.5); err == nil {
		t.Fatal("negative probability accepted")
	}
	// 0^0 convention: zero query-dependent part with λ=0 is neutral.
	s, _ = SmoothedScore(0, 0.9, 0)
	if math.Abs(s-0.9) > 1e-12 {
		t.Fatalf("0^0 convention broken: %g", s)
	}
}

func TestNaiveRankerRuleCap(t *testing.T) {
	l := paperSetup(t)
	var rules []prefs.Rule
	for i := 0; i < 21; i++ {
		rules = append(rules, prefs.Rule{
			Name: "R" + string(rune('a'+i)), Context: dl.Top(),
			Preference: dl.Atom("TvProgram"), Sigma: 0.5,
		})
	}
	if _, err := NewNaiveRanker(l).Rank(Request{User: "peter", Target: dl.Atom("TvProgram"), Rules: rules}); err == nil {
		t.Fatal("rule cap not enforced")
	}
}

func TestViewRankerBuildSeparately(t *testing.T) {
	l := paperSetup(t)
	vr := NewViewRanker(l)
	name, err := vr.BuildPreferenceView(paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if !l.DB().HasView(name) {
		t.Fatalf("view %s not registered", name)
	}
	res, err := l.DB().Query("SELECT id, score FROM " + name + " ORDER BY score DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || math.Abs(res.Rows[0][1].F-0.6006) > 1e-9 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
