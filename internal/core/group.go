package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dl"
	"repro/internal/prefs"
)

// GroupPolicy selects how per-member ideal-document probabilities combine
// into a group score (§6 "Modeling multiple users": "this could be
// naturally addressed with the model presented here").
type GroupPolicy string

// Group aggregation policies.
const (
	// PolicyConsensus multiplies member probabilities: the probability
	// that the document is ideal for *every* member simultaneously (under
	// member independence). Harsh but faithful to the model: one member's
	// zero vetoes the document.
	PolicyConsensus GroupPolicy = "consensus"
	// PolicyAverage takes the arithmetic mean — the utilitarian reading:
	// the probability that the document is ideal for a uniformly random
	// member.
	PolicyAverage GroupPolicy = "average"
	// PolicyLeastMisery takes the minimum — the classic group-
	// recommendation fairness policy: nobody is very unhappy.
	PolicyLeastMisery GroupPolicy = "least-misery"
)

// GroupRequest ranks the target's members for several situated users at
// once, each with their own preference rules.
type GroupRequest struct {
	Users     []string
	Target    *dl.Expr
	RulesFor  map[string][]prefs.Rule
	Policy    GroupPolicy // defaults to PolicyConsensus
	Threshold float64
	Limit     int
}

// GroupResult is one candidate with its group score and the per-member
// scores behind it.
type GroupResult struct {
	ID        string
	Score     float64
	PerMember map[string]float64
}

// GroupRank scores every candidate for every member using the given
// per-user ranker and combines the scores under the request's policy.
func GroupRank(ranker Ranker, req GroupRequest) ([]GroupResult, error) {
	if len(req.Users) == 0 {
		return nil, fmt.Errorf("core: group request without users")
	}
	if req.Target == nil {
		return nil, fmt.Errorf("core: group request without a target concept")
	}
	policy := req.Policy
	if policy == "" {
		policy = PolicyConsensus
	}
	perDoc := make(map[string]map[string]float64)
	record := func(id, user string, score float64) {
		if perDoc[id] == nil {
			perDoc[id] = make(map[string]float64, len(req.Users))
		}
		perDoc[id][user] = score
	}
	recordAll := func(user string, results []Result) {
		for _, r := range results {
			record(r.ID, user, r.Score)
		}
	}
	if fr, ok := ranker.(*FactorizedRanker); ok {
		// Plan fast path: resolve the target's members once for the whole
		// group, then compile one plan per member instead of re-resolving
		// target and rules user by user.
		candidates, err := resolveCandidates(fr.loader, Request{User: req.Users[0], Target: req.Target})
		if err != nil {
			return nil, err
		}
		sc := getScratch()
		defer putScratch(sc)
		for _, user := range req.Users {
			plan, err := CompilePlan(fr.loader, user, req.RulesFor[user])
			if err != nil {
				if errors.Is(err, ErrClusterBound) {
					// Same fallback as FactorizedRanker.Rank: this member's
					// footprint partition is too coarse, but per-candidate
					// clusters may still be small.
					results, lerr := fr.legacyRank(Request{User: user, Candidates: candidates, Rules: req.RulesFor[user]})
					if lerr != nil {
						return nil, fmt.Errorf("core: group member %s: %w", user, lerr)
					}
					recordAll(user, results)
					continue
				}
				return nil, fmt.Errorf("core: group member %s: %w", user, err)
			}
			for _, id := range candidates {
				score, err := plan.ScoreWith(sc, id)
				if err != nil {
					return nil, fmt.Errorf("core: group member %s: %w", user, err)
				}
				record(id, user, score)
			}
		}
	} else {
		for _, user := range req.Users {
			results, err := ranker.Rank(Request{
				User:   user,
				Target: req.Target,
				Rules:  req.RulesFor[user],
			})
			if err != nil {
				return nil, fmt.Errorf("core: group member %s: %w", user, err)
			}
			recordAll(user, results)
		}
	}
	out := make([]GroupResult, 0, len(perDoc))
	for id, members := range perDoc {
		score, err := combineGroup(policy, req.Users, members)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupResult{ID: id, Score: score, PerMember: members})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if req.Threshold > 0 {
		kept := out[:0]
		for _, r := range out {
			if r.Score > req.Threshold {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	if req.Limit > 0 && len(out) > req.Limit {
		out = out[:req.Limit]
	}
	return out, nil
}

func combineGroup(policy GroupPolicy, users []string, members map[string]float64) (float64, error) {
	switch policy {
	case PolicyConsensus:
		p := 1.0
		for _, u := range users {
			p *= members[u]
		}
		return p, nil
	case PolicyAverage:
		sum := 0.0
		for _, u := range users {
			sum += members[u]
		}
		return sum / float64(len(users)), nil
	case PolicyLeastMisery:
		minScore := 1.0
		for _, u := range users {
			if members[u] < minScore {
				minScore = members[u]
			}
		}
		return minScore, nil
	}
	return 0, fmt.Errorf("core: unknown group policy %q", policy)
}
