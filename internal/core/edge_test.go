package core

import (
	"math"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
	"repro/internal/situation"
)

// TestCorrelatedPreferencesCluster exercises the factorized ranker's
// cluster path: two rules whose preference memberships share the same
// basic event are maximally correlated, so the naive reference and the
// factorized ranker must still agree exactly.
func TestCorrelatedPreferencesCluster(t *testing.T) {
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	l.DeclareConcept("Doc")
	l.DeclareConcept("F1")
	l.DeclareConcept("F2")
	db.Space().Declare("shared", 0.6)
	l.AssertConcept("Doc", "d", nil)
	// Both features hinge on the same event: perfectly correlated.
	l.AssertConcept("F1", "d", event.Basic("shared"))
	l.AssertConcept("F2", "d", event.Basic("shared"))
	situation.New("u").Certain("Ctx").Apply(l)
	rules := []prefs.Rule{
		{Name: "r1", Context: dl.Atom("Ctx"), Preference: dl.Atom("F1"), Sigma: 0.9},
		{Name: "r2", Context: dl.Atom("Ctx"), Preference: dl.Atom("F2"), Sigma: 0.7},
	}
	req := Request{User: "u", Target: dl.Atom("Doc"), Rules: rules}
	naive, err := NewNaiveRanker(l).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := NewFactorizedRanker(l).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	// With full correlation the document either has both features (0.6) or
	// neither (0.4): 0.6·(0.9·0.7) + 0.4·(0.1·0.3) = 0.39.
	want := 0.6*0.9*0.7 + 0.4*0.1*0.3
	if math.Abs(naive[0].Score-want) > 1e-9 {
		t.Fatalf("naive = %g, want %g", naive[0].Score, want)
	}
	if math.Abs(fact[0].Score-naive[0].Score) > 1e-9 {
		t.Fatalf("factorized %g != naive %g", fact[0].Score, naive[0].Score)
	}
}

// TestContextDocCorrelation: a rule whose context event and preference
// event coincide. The paper's formula treats the context-state and
// document-state distributions as independent (P(g)·P(f), §3.3) — document
// features doubling as context features is explicitly out of scope (§3.2)
// — so every ranker must marginalize the shared event and produce
// 0.5·(0.5·0.8 + 0.5·0.2) + 0.5·1 = 0.75.
func TestContextDocCorrelation(t *testing.T) {
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	l.DeclareConcept("Doc")
	l.DeclareConcept("F")
	l.DeclareConcept("Ctx")
	db.Space().Declare("e", 0.5)
	l.AssertConcept("Doc", "d", nil)
	l.AssertConcept("F", "d", event.Basic("e"))
	l.AssertConcept("Ctx", "u", event.Basic("e"))
	rules := []prefs.Rule{{Name: "r", Context: dl.Atom("Ctx"), Preference: dl.Atom("F"), Sigma: 0.8}}
	req := Request{User: "u", Target: dl.Atom("Doc"), Rules: rules}

	// Paper formula (independence): Σ_g P(g) Σ_f P(f) factor
	// = 0.5·(0.5·0.8 + 0.5·0.2) + 0.5·1 = 0.75.
	naive, err := NewNaiveRanker(l).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(naive[0].Score-0.75) > 1e-9 {
		t.Fatalf("naive = %g, want 0.75", naive[0].Score)
	}
	fact, err := NewFactorizedRanker(l).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fact[0].Score-0.75) > 1e-9 {
		t.Fatalf("factorized = %g, want 0.75", fact[0].Score)
	}
	view, err := NewViewRanker(l).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(view[0].Score-0.75) > 1e-9 {
		t.Fatalf("view = %g, want 0.75", view[0].Score)
	}
	sampled, err := NewSampledRanker(l, 50000, 3).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sampled[0].Score-0.75) > 0.01 {
		t.Fatalf("sampled = %g, want ≈0.75", sampled[0].Score)
	}
}

func TestViewRankerRuleCap(t *testing.T) {
	l := paperSetup(t)
	var rules []prefs.Rule
	for i := 0; i < 11; i++ {
		rules = append(rules, prefs.Rule{
			Name: "R" + string(rune('a'+i)), Context: dl.Top(),
			Preference: dl.Atom("TvProgram"), Sigma: 0.5,
		})
	}
	vr := NewViewRanker(l)
	if _, err := vr.Rank(Request{User: "peter", Target: dl.Atom("TvProgram"), Rules: rules}); err == nil {
		t.Fatal("view rule cap not enforced")
	}
}

func TestCandidatesOverrideTarget(t *testing.T) {
	l := paperSetup(t)
	req := paperRequest(t)
	req.Target = nil
	req.Candidates = []string{"BBCNews", "MPFS", "BBCNews"} // dup removed
	for _, r := range []Ranker{NewNaiveRanker(l), NewFactorizedRanker(l), NewSampledRanker(l, 2000, 1)} {
		results, err := r.Rank(req)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if len(results) != 2 || results[0].ID != "BBCNews" {
			t.Fatalf("%s: results = %v", r.Name(), results)
		}
	}
	req.Candidates = nil
	if _, err := NewNaiveRanker(l).Rank(req); err == nil {
		t.Fatal("request without target or candidates accepted")
	}
}

func TestCandidatesOutsideEveryPreference(t *testing.T) {
	// Candidates the rules never mention score by the no-feature factors.
	l := paperSetup(t)
	req := paperRequest(t)
	req.Target = nil
	req.Candidates = []string{"martian"}
	results, err := NewFactorizedRanker(l).Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	// Both contexts certain, no features: (1−0.8)(1−0.9) = 0.02.
	if math.Abs(results[0].Score-0.02) > 1e-9 {
		t.Fatalf("score = %g", results[0].Score)
	}
}
