package core

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/mapping"
)

// SampledRanker estimates the ideal-document probability by Monte Carlo
// over the event space instead of exact state enumeration: it draws
// independent random worlds of the context events and of the document
// events (the paper's P(g)·P(f) independence, §3.3) and averages the
// per-world factor product
//
//	Π_i ((1−C_i) + C_i · (σ_i X_i + (1−σ_i)(1−X_i))).
//
// The cost is O(samples · rules) per candidate regardless of correlation
// structure — an anytime alternative the paper's §6 performance discussion
// invites, trading a O(1/√samples) standard error for immunity to the
// exponential blow-up. Deterministic per Seed.
type SampledRanker struct {
	loader *mapping.Loader
	// Samples per candidate; 0 means DefaultSamples.
	Samples int
	// Seed for the internal generator; rankings are reproducible per seed.
	Seed int64
}

// DefaultSamples is used when SampledRanker.Samples is 0.
const DefaultSamples = 4000

// NewSampledRanker builds a Monte Carlo ranker over the loader.
func NewSampledRanker(l *mapping.Loader, samples int, seed int64) *SampledRanker {
	return &SampledRanker{loader: l, Samples: samples, Seed: seed}
}

// Name implements Ranker.
func (r *SampledRanker) Name() string { return "sampled" }

// Rank implements Ranker.
func (r *SampledRanker) Rank(req Request) ([]Result, error) {
	candidates, states, err := resolve(r.loader, req)
	if err != nil {
		return nil, err
	}
	n := r.Samples
	if n <= 0 {
		n = DefaultSamples
	}
	space := r.loader.DB().Space()
	rng := rand.New(rand.NewSource(r.Seed))

	// Context events are shared across candidates: sample their worlds once
	// per iteration round by folding them into each candidate's sampler.
	ctxExprs := make([]*event.Expr, len(states))
	for i, st := range states {
		ctxExprs[i] = st.ctxEv
	}

	ctxSampler, err := space.NewSampler(ctxExprs...)
	if err != nil {
		return nil, fmt.Errorf("core: sampled ranker: %w", err)
	}

	results := make([]Result, 0, len(candidates))
	// Separate assignments for the context world and the document world:
	// the paper's formula treats the two distributions as independent
	// (P(g)·P(f), §3.3), so they are sampled independently even if they
	// happen to share basic events.
	ctxAssign := make(map[string]bool, 32)
	docAssign := make(map[string]bool, 32)
	for _, id := range candidates {
		docExprs := make([]*event.Expr, 0, len(states))
		for _, st := range states {
			docExprs = append(docExprs, st.docEvs[id])
		}
		docSampler, err := space.NewSampler(docExprs...)
		if err != nil {
			return nil, fmt.Errorf("core: sampled ranker: %w", err)
		}
		total := 0.0
		for it := 0; it < n; it++ {
			ctxSampler.Sample(rng, ctxAssign)
			docSampler.Sample(rng, docAssign)
			prod := 1.0
			for i, st := range states {
				if !ctxExprs[i].Eval(ctxAssign) {
					continue // context does not apply in this world
				}
				if st.docEvs[id].Eval(docAssign) {
					prod *= st.rule.Sigma
				} else {
					prod *= 1 - st.rule.Sigma
				}
			}
			total += prod
		}
		res := Result{ID: id, Score: total / float64(n)}
		if req.Explain {
			res.Explanation, err = explain(space, states, id)
			if err != nil {
				return nil, err
			}
		}
		results = append(results, res)
	}
	return finalize(req, results), nil
}
