package core

import (
	"errors"
	"fmt"

	"repro/internal/event"
	"repro/internal/mapping"
)

// FactorizedRanker is the §6 "Performance" extension. It computes the same
// expectation as NaiveRanker,
//
//	score(d) = E[ Π_i ((1−C_i) + C_i · (σ_i X_i + (1−σ_i)(1−X_i))) ],
//
// where C_i is the indicator "rule i's context applies" and X_i the
// indicator "d carries rule i's preferred feature", but exploits the event
// space's independence structure:
//
//  1. Rules whose context event is impossible are pruned (factor 1) —
//     "prune the amount of applicable rules … in early stages".
//  2. The remaining rules are partitioned into clusters such that rules in
//     different clusters touch disjoint correlated blocks of basic events;
//     the expectation factorizes across clusters.
//  3. Within a cluster the joint state is enumerated exactly (2^(2m) for a
//     cluster of m rules); a fully independent rule forms a singleton
//     cluster whose factor costs O(1).
//
// Since the 2007 reproduction's first serving PRs, Rank is implemented by
// compiling a Plan (see plan.go): pruning, clustering and the context-state
// distributions depend only on the user's context and the rule set, so they
// are resolved once per request instead of once per candidate, and only the
// document-side distribution is evaluated per candidate. With mutually
// independent rules — the common case, since sensor events and data events
// are distinct — the per-candidate cost is linear in the number of rules
// while the scores are bit-identical to the reference semantics up to
// floating-point association order.
type FactorizedRanker struct {
	loader *mapping.Loader
}

// NewFactorizedRanker builds the optimized ranker over the loader.
func NewFactorizedRanker(l *mapping.Loader) *FactorizedRanker {
	return &FactorizedRanker{loader: l}
}

// Name implements Ranker.
func (r *FactorizedRanker) Name() string { return "factorized" }

// maxClusterRules bounds exact within-cluster enumeration. Plan compilation
// applies the bound to the footprint (candidate-independent) partition,
// which can be coarser than the per-candidate one: two rules whose
// preferences share an event for *any* document land in one cluster for
// every document.
const maxClusterRules = 16

// ErrClusterBound marks a correlation cluster too large to enumerate
// exactly. Rank (and GroupRank, and the serving layer's plan cache) use it
// to fall back from the coarse footprint partition to per-candidate
// clustering, which only ever fails this way when a *single candidate's*
// cluster exceeds the bound.
var ErrClusterBound = errors.New("exceeds the exact-enumeration bound")

// Rank implements Ranker by compiling a Plan for the request's user and
// rules and scoring every candidate against it. When the plan's
// candidate-independent partition produces a cluster past the enumeration
// bound, Rank falls back to the per-candidate path: rules chained together
// only through different documents' events (doc d couples rules A,B; doc e
// couples B,C; …) stay in small per-candidate clusters there, so rule sets
// the bound rejects at compile time may still rank fine — and ones that
// do not fail with the same error they always did.
func (r *FactorizedRanker) Rank(req Request) ([]Result, error) {
	// An explicit candidate list restricts the footprint partition to those
	// candidates' events: the plan lives for this request only, and walking
	// the whole catalog's membership events to rank three candidates would
	// cost more than the hoisting saves.
	var only map[string]bool
	if req.Candidates != nil {
		only = make(map[string]bool, len(req.Candidates))
		for _, id := range req.Candidates {
			only[id] = true
		}
	}
	plan, err := compilePlan(r.loader, req.User, req.Rules, only)
	if err != nil {
		if errors.Is(err, ErrClusterBound) {
			return r.legacyRank(req)
		}
		return nil, err
	}
	return plan.Rank(PlanRequest{
		Target:     req.Target,
		Candidates: req.Candidates,
		Threshold:  req.Threshold,
		Limit:      req.Limit,
		TopK:       req.TopK,
		Explain:    req.Explain,
	})
}

// RankPerCandidate is the pre-plan implementation: it re-runs rule
// clustering and the full within-cluster state enumeration for every
// candidate. Callers that already know plan compilation fails with
// ErrClusterBound (e.g. a plan cache holding a negative verdict) route
// here directly to skip the doomed recompile; it also serves as a second
// executable reference for the equivalence tests and as
// BenchmarkPlanScoreLargeCatalog's baseline.
func (r *FactorizedRanker) RankPerCandidate(req Request) ([]Result, error) {
	return r.legacyRank(req)
}

// legacyRank is RankPerCandidate's implementation.
func (r *FactorizedRanker) legacyRank(req Request) ([]Result, error) {
	candidates, states, err := resolve(r.loader, req)
	if err != nil {
		return nil, err
	}
	space := r.loader.DB().Space()

	// Prune rules that cannot apply in the current context.
	active := make([]*ruleState, 0, len(states))
	for _, st := range states {
		p, err := space.Prob(st.ctxEv)
		if err != nil {
			return nil, err
		}
		if p > 0 {
			active = append(active, st)
		}
	}

	results := make([]Result, 0, len(candidates))
	for _, id := range candidates {
		clusters, err := clusterRules(space, active, id)
		if err != nil {
			return nil, err
		}
		score := 1.0
		for _, cl := range clusters {
			f, err := clusterFactor(space, cl, id)
			if err != nil {
				return nil, err
			}
			score *= f
		}
		res := Result{ID: id, Score: score}
		if req.Explain {
			res.Explanation, err = explain(space, states, id)
			if err != nil {
				return nil, err
			}
		}
		results = append(results, res)
	}
	return finalize(req, results), nil
}

// clusterRules partitions the active rules into groups of mutually
// dependent rules using union-find over the Space's independence relation.
// An Independent probe that fails (e.g. a membership event referencing a
// retired basic) aborts the clustering: treating the error as "dependent"
// would silently merge clusters and then fail later — or worse, enumerate a
// cluster whose probabilities are undefined.
func clusterRules(space *event.Space, states []*ruleState, id string) ([][]*ruleState, error) {
	n := len(states)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	joint := make([]*event.Expr, n)
	for i, st := range states {
		joint[i] = event.And(st.ctxEv, st.docEvs[id])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			indep, err := space.Independent(joint[i], joint[j])
			if err != nil {
				return nil, fmt.Errorf("core: clustering rules %s and %s: %w",
					states[i].rule.Name, states[j].rule.Name, err)
			}
			if !indep {
				union(i, j)
			}
		}
	}
	byRoot := make(map[int][]*ruleState)
	var roots []int
	for i, st := range states {
		root := find(i)
		if _, ok := byRoot[root]; !ok {
			roots = append(roots, root)
		}
		byRoot[root] = append(byRoot[root], st)
	}
	out := make([][]*ruleState, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out, nil
}

// clusterFactor computes the cluster's expected factor product under the
// paper's §3.3 semantics: the context-state distribution and the
// document-state distribution are independent (P(g)·P(f)), each computed
// exactly over the cluster's events — so cross-rule correlation among
// context events and among document events is honoured, while a dependency
// between a rule's context and a document's features is deliberately
// marginalized out, exactly as in the paper's formula ("features of the
// document as context features … is out of scope", §3.2).
func clusterFactor(space *event.Space, cluster []*ruleState, id string) (float64, error) {
	m := len(cluster)
	if m == 1 {
		// Singleton fast path: factor = (1−pC) + pC·(σ·pX + (1−σ)(1−pX)).
		st := cluster[0]
		pC, err := space.Prob(st.ctxEv)
		if err != nil {
			return 0, err
		}
		pX, err := space.Prob(st.docEvs[id])
		if err != nil {
			return 0, err
		}
		s := st.rule.Sigma
		return (1 - pC) + pC*(s*pX+(1-s)*(1-pX)), nil
	}
	if m > maxClusterRules {
		return 0, fmt.Errorf("core: correlation cluster of %d rules %w %d", m, ErrClusterBound, maxClusterRules)
	}
	// Pre-compute the context-state and document-state distributions.
	ctxProbs := make([]float64, 1<<m)
	docProbs := make([]float64, 1<<m)
	for mask := 0; mask < 1<<m; mask++ {
		ctxConj := make([]*event.Expr, m)
		docConj := make([]*event.Expr, m)
		for i, st := range cluster {
			if mask&(1<<i) != 0 {
				ctxConj[i] = st.ctxEv
				docConj[i] = st.docEvs[id]
			} else {
				ctxConj[i] = event.Not(st.ctxEv)
				docConj[i] = event.Not(st.docEvs[id])
			}
		}
		p, err := space.Prob(event.And(ctxConj...))
		if err != nil {
			return 0, err
		}
		ctxProbs[mask] = p
		p, err = space.Prob(event.And(docConj...))
		if err != nil {
			return 0, err
		}
		docProbs[mask] = p
	}
	total := 0.0
	for g := 0; g < 1<<m; g++ {
		if ctxProbs[g] == 0 {
			continue
		}
		inner := 0.0
		for f := 0; f < 1<<m; f++ {
			if docProbs[f] == 0 {
				continue
			}
			prod := 1.0
			for i, st := range cluster {
				if g&(1<<i) == 0 {
					continue
				}
				if f&(1<<i) != 0 {
					prod *= st.rule.Sigma
				} else {
					prod *= 1 - st.rule.Sigma
				}
			}
			inner += docProbs[f] * prod
		}
		total += ctxProbs[g] * inner
	}
	return total, nil
}
