package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/mapping"
)

// NaiveRanker evaluates the paper's §3.3 formula literally:
//
//	P(D=d|U=u_sit) = Σ_g P(G(u_sit)=g) · Σ_f P(F(d)=f) ·
//	                 Π_(g,f)∈H { 1 | σ(g,f) | 1−σ(g,f) }
//
// The outer sums range over every combination of context-feature states and
// document-feature states, so evaluation is Θ(4^k) in the number of rules k
// — this ranker is the executable reference semantics, not a fast path.
// State probabilities are computed exactly on the event space, so shared
// lineage and exclusive sensor groups are honoured.
type NaiveRanker struct {
	loader *mapping.Loader
}

// NewNaiveRanker builds a reference ranker over the loader.
func NewNaiveRanker(l *mapping.Loader) *NaiveRanker { return &NaiveRanker{loader: l} }

// Name implements Ranker.
func (r *NaiveRanker) Name() string { return "naive" }

// Rank implements Ranker.
func (r *NaiveRanker) Rank(req Request) ([]Result, error) {
	candidates, states, err := resolve(r.loader, req)
	if err != nil {
		return nil, err
	}
	space := r.loader.DB().Space()
	k := len(states)
	if k > 20 {
		return nil, fmt.Errorf("core: naive ranker limited to 20 rules (Θ(4^k) double enumeration of context- and document-feature states), got %d", k)
	}

	// Pre-compute the probability of every context-feature state g ⊆ rules.
	ctxProbs := make([]float64, 1<<k)
	for mask := 0; mask < 1<<k; mask++ {
		conj := make([]*event.Expr, k)
		for i, st := range states {
			if mask&(1<<i) != 0 {
				conj[i] = st.ctxEv
			} else {
				conj[i] = event.Not(st.ctxEv)
			}
		}
		p, err := space.Prob(event.And(conj...))
		if err != nil {
			return nil, err
		}
		ctxProbs[mask] = p
	}

	results := make([]Result, 0, len(candidates))
	for _, id := range candidates {
		// Probability of every document-feature state f ⊆ rules for d.
		docProbs := make([]float64, 1<<k)
		for mask := 0; mask < 1<<k; mask++ {
			conj := make([]*event.Expr, k)
			for i, st := range states {
				if mask&(1<<i) != 0 {
					conj[i] = st.docEvs[id]
				} else {
					conj[i] = event.Not(st.docEvs[id])
				}
			}
			p, err := space.Prob(event.And(conj...))
			if err != nil {
				return nil, err
			}
			docProbs[mask] = p
		}

		score := 0.0
		for g := 0; g < 1<<k; g++ {
			if ctxProbs[g] == 0 {
				continue
			}
			inner := 0.0
			for f := 0; f < 1<<k; f++ {
				if docProbs[f] == 0 {
					continue
				}
				prod := 1.0
				for i, st := range states {
					if g&(1<<i) == 0 {
						continue // g ∉ g: factor 1
					}
					if f&(1<<i) != 0 {
						prod *= st.rule.Sigma
					} else {
						prod *= 1 - st.rule.Sigma
					}
				}
				inner += docProbs[f] * prod
			}
			score += ctxProbs[g] * inner
		}

		res := Result{ID: id, Score: score}
		if req.Explain {
			res.Explanation, err = explain(space, states, id)
			if err != nil {
				return nil, err
			}
		}
		results = append(results, res)
	}
	return finalize(req, results), nil
}
