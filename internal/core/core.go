// Package core implements the paper's primary contribution: scoring query
// results by the probability that each tuple is the "ideal document" for
// the situated user (van Bunningen et al., ICDE 2007, §3). Three rankers
// share the same semantics:
//
//   - NaiveRanker evaluates the §3.3 formula literally — a double sum over
//     all combinations of context-feature and document-feature states —
//     and serves as the executable reference semantics (exponential in the
//     number of rules by construction).
//   - ViewRanker is the paper's §5 implementation: it compiles a "big
//     preference view" into the embedded SQL engine, whose defining
//     expression doubles in size with every rule, and answers the user
//     query by joining against that view. This is the ranker whose
//     exponential query time reproduces the paper's bottleneck.
//   - FactorizedRanker is the §6 "Performance" extension: it prunes rules
//     whose context cannot apply, partitions the remaining rules into
//     correlation clusters via the event space's independence structure,
//     enumerates states only within clusters, and multiplies cluster
//     factors — linear in the number of mutually independent rules while
//     returning exactly the same scores.
package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/dl"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
)

// Request describes one ranking task: score the individuals of Target for
// the situated user under the given scored preference rules.
type Request struct {
	User   string       // the situated user individual
	Target *dl.Expr     // candidate concept, e.g. TvProgram
	Rules  []prefs.Rule // the applicable preference rules (repository order)
	// Candidates, when non-nil, restricts scoring to exactly these
	// individuals instead of the members of Target — the §5 integration
	// with the user's query, where "the probability of the query-dependent
	// part is either 1, if the tuple was contained in the user query, or 0
	// if it was not". Target may then be nil.
	Candidates []string
	Threshold  float64 // drop results with Score <= Threshold (0 keeps all)
	Limit      int     // keep at most Limit results (0 = unlimited)
	// TopK, when positive, asks for only the best k results. Every ranker
	// returns exactly the first k of its full result list (the compiled
	// plan selects them with a bounded heap instead of a full sort); 0
	// disables, negative is an error.
	TopK    int
	Explain bool // attach per-rule explanations (traceability, §6)
}

// Result is one scored candidate.
type Result struct {
	ID          string
	Score       float64
	Explanation *Explanation
}

// Explanation justifies a score rule by rule — the paper's traceability
// goal (§6 "Explanation of results").
type Explanation struct {
	Rules []RuleContribution
}

// RuleContribution is one rule's share of a score: the probability the
// rule's context applies, the probability the candidate carries the
// preferred feature, the rule's σ, and the expected multiplicative factor
// the rule contributes under independence.
type RuleContribution struct {
	Rule        string
	ContextProb float64
	MemberProb  float64
	Sigma       float64
	Factor      float64
	Pruned      bool // context cannot apply; the rule contributed factor 1
}

// String renders the contribution for display.
func (rc RuleContribution) String() string {
	if rc.Pruned {
		return fmt.Sprintf("%s: context inapplicable (factor 1)", rc.Rule)
	}
	return fmt.Sprintf("%s: P(ctx)=%.3f P(feature)=%.3f σ=%.2f → factor %.4f",
		rc.Rule, rc.ContextProb, rc.MemberProb, rc.Sigma, rc.Factor)
}

// Ranker scores candidates for a situated user.
type Ranker interface {
	// Rank returns candidates ordered by descending score (ties broken by
	// ID for determinism), filtered by the request's threshold and limit.
	Rank(req Request) ([]Result, error)
	// Name identifies the ranker in benchmarks and explanations.
	Name() string
}

// ruleState carries the per-request resolved events for one rule.
type ruleState struct {
	rule   prefs.Rule
	ctxEv  *event.Expr // event "rule context applies to the user"
	docEvs map[string]*event.Expr
}

// resolve compiles every rule's context and preference views and fetches
// the relevant events: the user's membership event in each context and
// every candidate's membership event in each preference.
func resolve(l *mapping.Loader, req Request) (candidates []string, states []*ruleState, err error) {
	candidates, err = resolveCandidates(l, req)
	if err != nil {
		return nil, nil, err
	}
	states = make([]*ruleState, 0, len(req.Rules))
	for _, rule := range req.Rules {
		if err := rule.Validate(); err != nil {
			return nil, nil, err
		}
		ctxEv, err := l.MembershipEvent(rule.Context, req.User)
		if err != nil {
			return nil, nil, fmt.Errorf("core: rule %s context: %w", rule.Name, err)
		}
		prefMembers, err := l.Members(rule.Preference)
		if err != nil {
			return nil, nil, fmt.Errorf("core: rule %s preference: %w", rule.Name, err)
		}
		docEvs := make(map[string]*event.Expr, len(candidates))
		for _, id := range candidates {
			if ev, ok := prefMembers[id]; ok {
				docEvs[id] = ev
			} else {
				docEvs[id] = event.False()
			}
		}
		states = append(states, &ruleState{rule: rule, ctxEv: ctxEv, docEvs: docEvs})
	}
	return candidates, states, nil
}

// resolveCandidates determines the sorted, deduplicated candidate ids of a
// request: the explicit candidate list if given, otherwise the members of
// the target concept.
func resolveCandidates(l *mapping.Loader, req Request) ([]string, error) {
	if req.User == "" {
		return nil, fmt.Errorf("core: request without a user")
	}
	if req.TopK < 0 {
		return nil, fmt.Errorf("core: top-k must be positive (got %d)", req.TopK)
	}
	var candidates []string
	switch {
	case req.Candidates != nil:
		seen := make(map[string]bool, len(req.Candidates))
		for _, id := range req.Candidates {
			if !seen[id] {
				seen[id] = true
				candidates = append(candidates, id)
			}
		}
	case req.Target != nil:
		targetMembers, err := l.Members(req.Target)
		if err != nil {
			return nil, fmt.Errorf("core: target: %w", err)
		}
		candidates = make([]string, 0, len(targetMembers))
		for id := range targetMembers {
			candidates = append(candidates, id)
		}
	default:
		return nil, fmt.Errorf("core: request needs a target concept or an explicit candidate list")
	}
	sort.Strings(candidates)
	return candidates, nil
}

// finalize sorts, thresholds and truncates results. TopK and Limit both
// keep a prefix of the sorted order, so here they collapse to the smaller
// positive bound — the plan path gets the same semantics from its bounded
// heap without sorting the whole catalog.
func finalize(req Request, results []Result) []Result {
	slices.SortFunc(results, compareResults)
	if req.Threshold > 0 {
		kept := results[:0]
		for _, r := range results {
			if r.Score > req.Threshold {
				kept = append(kept, r)
			}
		}
		results = kept
	}
	limit := req.Limit
	if req.TopK > 0 && (limit == 0 || req.TopK < limit) {
		limit = req.TopK
	}
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results
}

// explain builds the per-rule contribution trace for one candidate.
func explain(space *event.Space, states []*ruleState, id string) (*Explanation, error) {
	ex := &Explanation{}
	for _, st := range states {
		pCtx, err := space.Prob(st.ctxEv)
		if err != nil {
			return nil, err
		}
		if pCtx == 0 {
			ex.Rules = append(ex.Rules, RuleContribution{Rule: st.rule.Name, Sigma: st.rule.Sigma, Pruned: true, Factor: 1})
			continue
		}
		pDoc, err := space.Prob(st.docEvs[id])
		if err != nil {
			return nil, err
		}
		s := st.rule.Sigma
		factor := pCtx*(pDoc*s+(1-pDoc)*(1-s)) + (1 - pCtx)
		ex.Rules = append(ex.Rules, RuleContribution{
			Rule:        st.rule.Name,
			ContextProb: pCtx,
			MemberProb:  pDoc,
			Sigma:       s,
			Factor:      factor,
		})
	}
	return ex, nil
}

// SmoothedScore combines the query-dependent probability (the traditional
// IR part of equation (3), e.g. a language-model score from internal/ir)
// with the query-independent context score by a weighted geometric mean —
// the smoothing-style weighting the paper proposes exploring in §6
// ("weighting of the query-independent and query-dependent part of
// equation (3), using smoothing methods"). lambda = 1 ranks purely by the
// query; lambda = 0 purely by context.
func SmoothedScore(queryDependent, contextScore, lambda float64) (float64, error) {
	if lambda < 0 || lambda > 1 {
		return 0, fmt.Errorf("core: lambda %g outside [0,1]", lambda)
	}
	if queryDependent < 0 || contextScore < 0 {
		return 0, fmt.Errorf("core: negative probability input")
	}
	return pow(queryDependent, lambda) * pow(contextScore, 1-lambda), nil
}

// pow wraps math.Pow with the 0^0 = 1 convention so that a missing
// component with weight 0 is neutral.
func pow(base, exp float64) float64 {
	if exp == 0 {
		return 1
	}
	return math.Pow(base, exp)
}
