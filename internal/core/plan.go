package core

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dl"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
)

// Plan is a compiled ranking plan: everything about a (user, rule set,
// context epoch) triple that does not depend on the candidate being scored,
// resolved once so that scoring a catalog of n documents costs n× the
// document-side work only. Compilation performs the §6 "early stages" of
// the factorized ranker up front:
//
//  1. Rule contexts are resolved to the user's membership events and rules
//     whose context cannot apply (probability 0) are pruned.
//  2. Every rule's preference view is compiled and its membership events
//     fetched for the whole catalog.
//  3. The surviving rules are partitioned into correlation clusters by
//     their basic-event footprint — the correlated blocks mentioned by the
//     rule's context event or by any of its preference membership events.
//     Rules in different clusters touch disjoint blocks for *every*
//     candidate, so the expectation factorizes across clusters. (This
//     replaces the per-candidate union-find over Space.Independent probes:
//     the footprint partition is candidate-independent and may therefore be
//     slightly coarser than the per-candidate one, which changes only
//     floating-point association order, never the semantics.)
//  4. Per multi-rule cluster the 2^m context-state probability table is
//     precomputed; singleton clusters store the scalar context probability.
//
// Score then evaluates only the document-state distribution per candidate,
// and memoizes it: each candidate's per-cluster document-side distribution
// is cached inside the plan (keyed by the event space's invalidation
// generation), so repeat ranks over a stable catalog skip the doc-side
// Prob calls entirely and reduce to pure float arithmetic.
//
// A Plan is immutable after compilation apart from its internal caches and
// safe for concurrent use, but it answers for the state it was compiled
// against: the context-state distribution is frozen at compile time, so a
// plan used after the context changed keeps ranking under the old context;
// a plan whose document events were retired (data mutation) fails with
// "not declared" (the cached distributions are invalidated by the space's
// generation counter, so retirement surfaces as an error, never as a stale
// score); and a Target's resolved candidate list is cached per generation,
// so data asserted without any event-space change becomes visible only to
// freshly compiled plans. Callers that reuse plans must therefore
// invalidate them on every data *and* context epoch — internal/serve's
// plan cache keys them by exactly those.
type Plan struct {
	loader *mapping.Loader
	space  *event.Space
	user   string

	rules    []planRule    // every requested rule, in request order
	clusters []planCluster // active (unpruned) rules only
	distLen  int           // floats per candidate in the doc-distribution cache

	// Incremental-maintenance state (see Refresh). restricted marks a plan
	// compiled with a candidate restriction, which Refresh refuses to
	// maintain; blocksGen is the space generation the footprints were
	// computed at; appliedCtx the context concepts applied at compile time;
	// docBlocks the per-rule document-side block keys (sorted, computed for
	// active rules during clustering), the half of a rule's footprint that a
	// context apply provably leaves intact.
	restricted bool
	blocksGen  uint64
	appliedCtx []string
	docBlocks  [][]string
	domainLen  int // dl_domain size at compile; growth re-checks ¬/⊤/nominal views

	// Document-side distribution cache: candidate id -> flat per-cluster
	// distribution (planCluster.distOff slices it). Entries are valid for
	// the space generation docGen was stamped with; any advance wipes the
	// map wholesale, which re-runs Prob and therefore re-surfaces "not
	// declared" for retired events instead of masking them.
	docMu   sync.RWMutex
	docGen  uint64
	docDist map[string][]float64

	// Candidate-resolution cache for Target-based requests, same
	// generation discipline. One slot suffices: a plan is keyed by (user,
	// rules, epoch) upstream and virtually always ranks one target.
	candMu     sync.RWMutex
	candGen    uint64
	candTarget *dl.Expr
	candIDs    []string
}

// docCacheMaxEntries bounds the per-plan distribution cache so a plan
// ranking an unbounded stream of ad-hoc candidate lists cannot grow
// without limit. Past the bound scoring still works, it just recomputes.
const docCacheMaxEntries = 1 << 17

// planRule is one rule's candidate-independent compilation product.
type planRule struct {
	rule    prefs.Rule
	ctxEv   *event.Expr
	ctxProb float64
	// members maps candidate id -> preference membership event for every
	// individual the preference view contains; absent ids are non-members
	// (event.False()).
	members map[string]*event.Expr
	// prefConcepts is the preference expression's concept signature and
	// domainDep whether the expression's view depends on dl_domain (¬/⊤/
	// nominal compile against the closed domain) — together they decide
	// whether a context apply could have changed the preference view, i.e.
	// whether Refresh must re-fetch members.
	prefConcepts []string
	domainDep    bool
}

// docEv returns the candidate's membership event in the rule's preference.
func (pr *planRule) docEv(id string) *event.Expr {
	if ev, ok := pr.members[id]; ok {
		return ev
	}
	return event.False()
}

// planCluster is one correlation cluster of active rules.
type planCluster struct {
	rules []int // indices into Plan.rules, ascending request order
	// ctxProbs is the precomputed context-state distribution over the
	// cluster's rules (index = bitmask of "rule context applies"); nil for
	// singleton clusters, whose factor uses ctxProb directly.
	ctxProbs []float64
	// distOff is the cluster's offset into a candidate's flat document
	// distribution: 1 slot (P(docEv)) for singletons, 2^m slots (the
	// document-state table) for an m-rule cluster.
	distOff int
}

// PlanScratch holds the per-request temporaries of the rank hot path —
// conjunction buffers, the result accumulator, the top-k heap — so a
// caller ranking in a loop allocates nothing per call. A scratch is
// single-goroutine state: use one per goroutine (Plan itself stays safe
// for concurrent use). Results returned by RankInto alias the scratch and
// are valid until its next use.
type PlanScratch struct {
	docConj []*event.Expr
	results []Result
}

// NewPlanScratch returns an empty scratch arena. Plan.Rank and Plan.Score
// draw from an internal pool automatically; allocate explicitly only for
// the zero-allocation RankInto path.
func NewPlanScratch() *PlanScratch { return &PlanScratch{} }

// Hot-path effectiveness counters, process-global like runtime metrics:
// plans come and go through caches, so per-plan counts cannot be
// aggregated reliably by callers. Exposed through ReadHotPathStats.
var (
	scratchGets    atomic.Int64
	scratchNews    atomic.Int64
	docCacheHits   atomic.Int64
	docCacheMisses atomic.Int64
)

// HotPathStats reports how effective the rank hot path's scratch pool and
// document-distribution caches are, cumulatively for the process.
type HotPathStats struct {
	// ScratchGets counts internal scratch-pool checkouts; ScratchNews the
	// subset that had to allocate a fresh arena (pool empty / GC'd).
	ScratchGets int64 `json:"scratch_gets"`
	ScratchNews int64 `json:"scratch_news"`
	// DocCacheHits/Misses count candidate scorings served from a plan's
	// cached document-side distribution vs. recomputed via Space.Prob.
	DocCacheHits   int64 `json:"doc_cache_hits"`
	DocCacheMisses int64 `json:"doc_cache_misses"`
}

// ReadHotPathStats returns the process-wide hot-path counters.
func ReadHotPathStats() HotPathStats {
	return HotPathStats{
		ScratchGets:    scratchGets.Load(),
		ScratchNews:    scratchNews.Load(),
		DocCacheHits:   docCacheHits.Load(),
		DocCacheMisses: docCacheMisses.Load(),
	}
}

var scratchPool = sync.Pool{New: func() any {
	scratchNews.Add(1)
	return &PlanScratch{}
}}

func getScratch() *PlanScratch {
	scratchGets.Add(1)
	return scratchPool.Get().(*PlanScratch)
}

func putScratch(sc *PlanScratch) { scratchPool.Put(sc) }

// CompilePlan resolves and compiles the rules for one situated user. The
// compile cost is paid once per (user, rule set, context epoch) instead of
// once per candidate; see the Plan type comment for what is hoisted.
func CompilePlan(l *mapping.Loader, user string, rules []prefs.Rule) (*Plan, error) {
	return compilePlan(l, user, rules, nil)
}

// compilePlan is CompilePlan with an optional candidate restriction: when
// only is non-nil, the footprint partition considers just those candidates'
// preference-membership events. A restricted plan is valid only for
// candidates in the set — the per-request path uses it so a 3-candidate
// RankQuery over a 100k-member preference does not walk 100k events'
// blocks; cacheable catalog-wide plans pass nil.
func compilePlan(l *mapping.Loader, user string, rules []prefs.Rule, only map[string]bool) (*Plan, error) {
	if user == "" {
		return nil, fmt.Errorf("core: request without a user")
	}
	space := l.DB().Space()
	p := &Plan{loader: l, space: space, user: user, restricted: only != nil}
	p.appliedCtx, _ = l.AppliedContext()
	p.domainLen = l.DomainSize()

	p.rules = make([]planRule, 0, len(rules))
	for _, rule := range rules {
		if err := rule.Validate(); err != nil {
			return nil, err
		}
		ctxEv, err := l.MembershipEvent(rule.Context, user)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s context: %w", rule.Name, err)
		}
		pCtx, err := space.Prob(ctxEv)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s context: %w", rule.Name, err)
		}
		members, err := l.Members(rule.Preference)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s preference: %w", rule.Name, err)
		}
		p.rules = append(p.rules, planRule{
			rule: rule, ctxEv: ctxEv, ctxProb: pCtx, members: members,
			prefConcepts: rule.Preference.Signature().Concepts,
			domainDep:    domainSensitive(rule.Preference),
		})
	}

	if err := p.compileClusters(only); err != nil {
		return nil, err
	}
	return p, nil
}

// compileClusters prunes impossible contexts, partitions the active rules
// by basic-event footprint and precomputes the per-cluster context-state
// tables. only, when non-nil, restricts the document-side footprint to
// those candidates (see compilePlan).
func (p *Plan) compileClusters(only map[string]bool) error {
	p.blocksGen = p.space.Generation()
	var active []int
	for i := range p.rules {
		if p.rules[i].ctxProb > 0 {
			active = append(active, i)
		}
	}

	// Union-find over the active rules, merging rules whose footprints
	// share a correlated block. blockOwner maps each block key to the
	// first active rule that mentioned it.
	parent := make([]int, len(active))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	blockOwner := make(map[string]int)
	footprint := make(map[string]bool)
	for ai, ri := range active {
		clear(footprint)
		st := &p.rules[ri]
		if err := p.space.Blocks(st.ctxEv, footprint); err != nil {
			return fmt.Errorf("core: rule %s context: %w", st.rule.Name, err)
		}
		if only == nil {
			keys, err := p.ruleDocBlocks(ri)
			if err != nil {
				return fmt.Errorf("core: rule %s preference: %w", st.rule.Name, err)
			}
			for _, k := range keys {
				footprint[k] = true
			}
		} else {
			for id := range only {
				if ev, ok := st.members[id]; ok {
					if err := p.space.Blocks(ev, footprint); err != nil {
						return fmt.Errorf("core: rule %s preference: %w", st.rule.Name, err)
					}
				}
			}
		}
		for key := range footprint {
			if owner, ok := blockOwner[key]; ok {
				parent[find(ai)] = find(owner)
			} else {
				blockOwner[key] = ai
			}
		}
	}

	byRoot := make(map[int][]int)
	var roots []int
	for ai, ri := range active {
		root := find(ai)
		if _, ok := byRoot[root]; !ok {
			roots = append(roots, root)
		}
		byRoot[root] = append(byRoot[root], ri)
	}

	p.clusters = make([]planCluster, 0, len(roots))
	for _, root := range roots {
		cl := planCluster{rules: byRoot[root]}
		m := len(cl.rules)
		if m > maxClusterRules {
			return fmt.Errorf("core: correlation cluster of %d rules %w %d", m, ErrClusterBound, maxClusterRules)
		}
		if m > 1 {
			// Precompute the context-state distribution, exactly as the
			// per-candidate path did — identical expressions, so the event
			// space's memo keys match too.
			cl.ctxProbs = make([]float64, 1<<m)
			for mask := 0; mask < 1<<m; mask++ {
				ctxConj := make([]*event.Expr, m)
				for i, ri := range cl.rules {
					if mask&(1<<i) != 0 {
						ctxConj[i] = p.rules[ri].ctxEv
					} else {
						ctxConj[i] = event.Not(p.rules[ri].ctxEv)
					}
				}
				prob, err := p.space.Prob(event.And(ctxConj...))
				if err != nil {
					return err
				}
				cl.ctxProbs[mask] = prob
			}
		}
		p.clusters = append(p.clusters, cl)
	}

	// Lay out the flat document-distribution record: 1 slot per singleton,
	// 2^m per m-rule cluster.
	off := 0
	for i := range p.clusters {
		p.clusters[i].distOff = off
		if m := len(p.clusters[i].rules); m > 1 {
			off += 1 << m
		} else {
			off++
		}
	}
	p.distLen = off
	p.docDist = make(map[string][]float64)
	return nil
}

// ruleDocBlocks returns rule ri's document-side block keys (sorted),
// computed from its preference-membership events and cached on the plan.
// Refresh carries the cache over for rules whose membership events are
// provably unchanged, which is what makes the refresh partition skip the
// per-member Blocks walk — the dominant clustering cost on large catalogs.
func (p *Plan) ruleDocBlocks(ri int) ([]string, error) {
	if p.docBlocks == nil {
		p.docBlocks = make([][]string, len(p.rules))
	}
	if p.docBlocks[ri] != nil {
		return p.docBlocks[ri], nil
	}
	fp := make(map[string]bool)
	for _, ev := range p.rules[ri].members {
		if err := p.space.Blocks(ev, fp); err != nil {
			return nil, err
		}
	}
	keys := make([]string, 0, len(fp))
	for k := range fp {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	p.docBlocks[ri] = keys
	return keys, nil
}

// domainSensitive reports whether the concept expression's compiled view
// reads dl_domain (¬, ⊤ and nominals do), i.e. whether registering a new
// individual — which a context apply for a first-seen user does — can
// change the view's membership even though no named concept table changed.
func domainSensitive(e *dl.Expr) bool {
	switch e.Op() {
	case dl.OpTop, dl.OpNot, dl.OpNominal:
		return true
	}
	for _, a := range e.Args() {
		if domainSensitive(a) {
			return true
		}
	}
	return false
}

// ErrPlanNotRefreshable marks a plan Refresh cannot maintain incrementally
// (candidate-restricted compile). Callers fall back to a fresh CompilePlan.
var ErrPlanNotRefreshable = fmt.Errorf("core: plan cannot be refreshed incrementally")

// Refresh compiles a successor plan against the loader's *current* context,
// reusing the candidate-independent work the context change provably left
// intact instead of recompiling from scratch. The contract mirrors the
// serving layer's epoch discipline: only context applies (situation.Apply)
// may have happened since the plan compiled — data and rule mutations
// invalidate the plan entirely and need CompilePlan.
//
// What is reused, and why it is exact:
//
//   - Preference membership maps: a context apply only clears and asserts
//     context-concept tables (plus dl_domain registrations). A rule whose
//     preference signature is disjoint from both the compile-time and the
//     current applied-context concepts — and whose view either does not
//     read the closed domain or the domain has not grown — cannot have
//     changed membership, so its members map and document-side block
//     footprint are carried over without touching the store. Other rules
//     re-fetch and diff per candidate.
//   - Cluster partition: re-run over fresh context footprints plus the
//     cached document footprints — the same union-find over the same keys a
//     fresh compile would walk, so the partition (and hence float
//     association order) is identical by construction.
//   - 2^m context-state tables: recomputed through Space.Prob, whose memo
//     retains entries for expressions that mention no retired event — an
//     unchanged rule context is a lookup, only genuinely touched clusters
//     pay an enumeration.
//   - Document-side distributions: adopted from the predecessor for every
//     candidate whose membership events are unchanged, provided the cluster
//     layout is identical and the event space's footprint diff
//     (ChangedBlocksSince) confirms no document block was retired,
//     regrouped or re-declared since they were computed. Re-scoring then
//     touches only candidates the change actually reached.
func (p *Plan) Refresh() (*Plan, error) {
	if p.restricted {
		return nil, ErrPlanNotRefreshable
	}
	curCtx, _ := p.loader.AppliedContext()
	touched := make(map[string]bool, len(p.appliedCtx)+len(curCtx))
	for _, c := range p.appliedCtx {
		touched[c] = true
	}
	for _, c := range curCtx {
		touched[c] = true
	}
	changed, _, tracked := p.space.ChangedBlocksSince(p.blocksGen)
	// A context apply for a first-seen individual grows dl_domain, which
	// changes the membership of every view that reads the closed domain
	// (¬, ⊤, nominals). An unchanged size proves no registration happened,
	// letting those rules keep their cached memberships too.
	domainLen := p.loader.DomainSize()
	domainGrew := domainLen != p.domainLen

	np := &Plan{loader: p.loader, space: p.space, user: p.user, appliedCtx: curCtx, domainLen: domainLen}
	np.rules = make([]planRule, len(p.rules))
	np.docBlocks = make([][]string, len(p.rules))
	// changedIDs collects candidates whose membership event differs in any
	// re-fetched rule; their cached distributions are the ones invalidated.
	changedIDs := make(map[string]bool)
	for i := range p.rules {
		old := &p.rules[i]
		ctxEv, err := p.loader.MembershipEvent(old.rule.Context, p.user)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s context: %w", old.rule.Name, err)
		}
		pCtx, err := p.space.Prob(ctxEv)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s context: %w", old.rule.Name, err)
		}
		nr := planRule{
			rule: old.rule, ctxEv: ctxEv, ctxProb: pCtx,
			prefConcepts: old.prefConcepts, domainDep: old.domainDep,
		}
		blocksOK := tracked && p.docBlocks != nil && p.docBlocks[i] != nil
		if blocksOK {
			for _, k := range p.docBlocks[i] {
				if changed[k] {
					blocksOK = false
					break
				}
			}
		}
		refetch := old.domainDep && domainGrew
		for _, c := range old.prefConcepts {
			if refetch {
				break
			}
			refetch = touched[c]
		}
		if refetch {
			members, err := p.loader.Members(old.rule.Preference)
			if err != nil {
				return nil, fmt.Errorf("core: rule %s preference: %w", old.rule.Name, err)
			}
			if !diffMembers(old.members, members, changedIDs) {
				blocksOK = false
			}
			nr.members = members
		} else {
			nr.members = old.members
		}
		if blocksOK {
			np.docBlocks[i] = p.docBlocks[i]
		}
		np.rules[i] = nr
	}
	if err := np.compileClusters(nil); err != nil {
		return nil, err
	}
	np.adoptDocDist(p, changedIDs)
	return np, nil
}

// diffMembers records into changed every candidate whose membership event
// differs between old and new; it reports whether the maps are identical.
func diffMembers(old, new map[string]*event.Expr, changed map[string]bool) bool {
	same := true
	for id, ev := range new {
		oev, ok := old[id]
		if !ok || !event.Equal(oev, ev) {
			changed[id] = true
			same = false
		}
	}
	for id := range old {
		if _, ok := new[id]; !ok {
			changed[id] = true
			same = false
		}
	}
	return same
}

// adoptDocDist carries the predecessor's cached document-side
// distributions into np for every candidate the context change provably
// did not reach. Preconditions checked here: the cluster layout (partition,
// rule order, distribution offsets) is identical, so the flat records have
// the same shape and association order; and the event space's footprint
// diff since the entries were computed is disjoint from every active
// rule's document footprint, so each adopted value is bit-identical to
// what a fresh computation would produce. On any doubt it adopts nothing —
// correctness never depends on adoption, only refresh speed does.
func (np *Plan) adoptDocDist(p *Plan, changedIDs map[string]bool) {
	if np.distLen != p.distLen || len(np.clusters) != len(p.clusters) {
		return
	}
	for i := range np.clusters {
		if np.clusters[i].distOff != p.clusters[i].distOff ||
			!slices.Equal(np.clusters[i].rules, p.clusters[i].rules) {
			return
		}
	}
	p.docMu.RLock()
	oldGen := p.docGen
	n := len(p.docDist)
	p.docMu.RUnlock()
	if n == 0 {
		return
	}
	changed, asOf, tracked := np.space.ChangedBlocksSince(oldGen)
	if !tracked {
		return
	}
	for _, cl := range np.clusters {
		for _, ri := range cl.rules {
			if np.docBlocks[ri] == nil {
				return
			}
			for _, k := range np.docBlocks[ri] {
				if changed[k] {
					return
				}
			}
		}
	}
	p.docMu.RLock()
	if p.docGen != oldGen {
		p.docMu.RUnlock()
		return
	}
	adopt := make(map[string][]float64, len(p.docDist))
	for id, d := range p.docDist {
		if !changedIDs[id] {
			adopt[id] = d
		}
	}
	p.docMu.RUnlock()
	np.docMu.Lock()
	np.docGen = asOf
	np.docDist = adopt
	np.docMu.Unlock()
}

// User returns the situated user the plan was compiled for.
func (p *Plan) User() string { return p.user }

// Rules returns the number of rules the plan was compiled from (including
// pruned ones).
func (p *Plan) Rules() int { return len(p.rules) }

// ActiveRules returns the number of rules whose context can apply.
func (p *Plan) ActiveRules() int {
	n := 0
	for _, cl := range p.clusters {
		n += len(cl.rules)
	}
	return n
}

// Score computes the candidate's ideal-document probability under the
// plan's compiled rule set: only the document-side distribution is
// evaluated here, the context side was resolved at compile time.
func (p *Plan) Score(id string) (float64, error) {
	sc := getScratch()
	defer putScratch(sc)
	return p.ScoreWith(sc, id)
}

// ScoreWith is Score with a caller-owned scratch arena, for scoring loops
// that must not allocate. The scratch must not be shared across goroutines.
func (p *Plan) ScoreWith(sc *PlanScratch, id string) (float64, error) {
	dist, err := p.docDistFor(sc, id)
	if err != nil {
		return 0, err
	}
	score := 1.0
	for i := range p.clusters {
		score *= p.clusterScoreFromDist(&p.clusters[i], dist)
	}
	return score, nil
}

// docDistFor returns the candidate's flat per-cluster document-state
// distribution, cached per space generation. A warm hit is one RLock and
// zero allocations; a miss computes via Space.Prob and publishes the
// record for subsequent ranks.
func (p *Plan) docDistFor(sc *PlanScratch, id string) ([]float64, error) {
	gen := p.space.Generation()
	p.docMu.RLock()
	if p.docGen == gen {
		if d, ok := p.docDist[id]; ok {
			p.docMu.RUnlock()
			docCacheHits.Add(1)
			return d, nil
		}
	}
	p.docMu.RUnlock()
	docCacheMisses.Add(1)

	d := make([]float64, p.distLen)
	if err := p.computeDocDist(sc, id, d); err != nil {
		return nil, err
	}
	p.docMu.Lock()
	if p.docGen < gen {
		// The map holds records of an older generation; drop them all so a
		// later generation match can never read a pre-invalidation value.
		clear(p.docDist)
		p.docGen = gen
	}
	if p.docGen == gen && len(p.docDist) < docCacheMaxEntries {
		p.docDist[id] = d
	}
	p.docMu.Unlock()
	return d, nil
}

// computeDocDist fills out with the candidate's document-side distribution
// for every cluster — the only part of scoring that consults the event
// space. Semantics are identical to the pre-cache clusterScore: the same
// expressions are built, so the space's memo keys match too.
func (p *Plan) computeDocDist(sc *PlanScratch, id string, out []float64) error {
	for ci := range p.clusters {
		cl := &p.clusters[ci]
		if len(cl.rules) == 1 {
			pX, err := p.space.Prob(p.rules[cl.rules[0]].docEv(id))
			if err != nil {
				return err
			}
			out[cl.distOff] = pX
			continue
		}
		m := len(cl.rules)
		if cap(sc.docConj) < m {
			sc.docConj = make([]*event.Expr, m)
		}
		docConj := sc.docConj[:m]
		for mask := 0; mask < 1<<m; mask++ {
			for i, ri := range cl.rules {
				if mask&(1<<i) != 0 {
					docConj[i] = p.rules[ri].docEv(id)
				} else {
					docConj[i] = event.Not(p.rules[ri].docEv(id))
				}
			}
			prob, err := p.space.Prob(event.And(docConj...))
			if err != nil {
				return err
			}
			out[cl.distOff+mask] = prob
		}
	}
	return nil
}

// clusterScoreFromDist computes one cluster's expected factor from the
// candidate's cached document distribution — the same §3.3 semantics as
// the pre-plan clusterFactor, now pure float arithmetic.
func (p *Plan) clusterScoreFromDist(cl *planCluster, dist []float64) float64 {
	if len(cl.rules) == 1 {
		// Singleton fast path: factor = (1−pC) + pC·(σ·pX + (1−σ)(1−pX)).
		st := &p.rules[cl.rules[0]]
		pX := dist[cl.distOff]
		s := st.rule.Sigma
		pC := st.ctxProb
		return (1 - pC) + pC*(s*pX+(1-s)*(1-pX))
	}
	m := len(cl.rules)
	docProbs := dist[cl.distOff : cl.distOff+1<<m]
	total := 0.0
	for g := 0; g < 1<<m; g++ {
		if cl.ctxProbs[g] == 0 {
			continue
		}
		inner := 0.0
		for f := 0; f < 1<<m; f++ {
			if docProbs[f] == 0 {
				continue
			}
			prod := 1.0
			for i, ri := range cl.rules {
				if g&(1<<i) == 0 {
					continue
				}
				if f&(1<<i) != 0 {
					prod *= p.rules[ri].rule.Sigma
				} else {
					prod *= 1 - p.rules[ri].rule.Sigma
				}
			}
			inner += docProbs[f] * prod
		}
		total += cl.ctxProbs[g] * inner
	}
	return total
}

// Explain builds the per-rule contribution trace for one candidate from
// the compiled context probabilities.
func (p *Plan) Explain(id string) (*Explanation, error) {
	ex := &Explanation{}
	for i := range p.rules {
		st := &p.rules[i]
		if st.ctxProb == 0 {
			ex.Rules = append(ex.Rules, RuleContribution{Rule: st.rule.Name, Sigma: st.rule.Sigma, Pruned: true, Factor: 1})
			continue
		}
		pDoc, err := p.space.Prob(st.docEv(id))
		if err != nil {
			return nil, err
		}
		s := st.rule.Sigma
		pCtx := st.ctxProb
		factor := pCtx*(pDoc*s+(1-pDoc)*(1-s)) + (1 - pCtx)
		ex.Rules = append(ex.Rules, RuleContribution{
			Rule:        st.rule.Name,
			ContextProb: pCtx,
			MemberProb:  pDoc,
			Sigma:       s,
			Factor:      factor,
		})
	}
	return ex, nil
}

// PlanRequest describes one ranking task against an already compiled plan:
// Request minus the user and rules, which the plan owns.
type PlanRequest struct {
	Target     *dl.Expr // candidate concept; nil when Candidates is set
	Candidates []string // explicit candidate list (see Request.Candidates)
	Threshold  float64
	Limit      int
	// TopK, when positive, selects the best k results with a bounded heap
	// instead of sorting the whole catalog. The output is exactly the
	// first k of the full-sort result (same order, same tie-breaking); a k
	// past the candidate count degrades to a full sort. 0 disables;
	// negative is an error.
	TopK    int
	Explain bool
}

// compareResults is the rank total order: score descending, then ID
// ascending — strict for distinct candidates, so top-k selection under it
// is bit-identical to truncating the full sort.
func compareResults(a, b Result) int {
	if a.Score != b.Score {
		if a.Score > b.Score {
			return -1
		}
		return 1
	}
	return strings.Compare(a.ID, b.ID)
}

// Rank scores the request's candidates with the compiled plan and returns
// them ordered, thresholded and truncated exactly like Ranker.Rank. The
// returned slice is freshly allocated and owned by the caller; loops that
// must not allocate use RankInto.
func (p *Plan) Rank(req PlanRequest) ([]Result, error) {
	sc := getScratch()
	defer putScratch(sc)
	res, err := p.rankInto(sc, req)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(res))
	copy(out, res)
	return out, nil
}

// RankInto is Rank with a caller-owned scratch arena: with a warm
// document-distribution cache the whole call performs zero allocations.
// The returned results alias the scratch and are valid until its next
// use; the scratch must not be shared across goroutines.
func (p *Plan) RankInto(sc *PlanScratch, req PlanRequest) ([]Result, error) {
	if sc == nil {
		return nil, fmt.Errorf("core: rank with a nil scratch")
	}
	return p.rankInto(sc, req)
}

func (p *Plan) rankInto(sc *PlanScratch, req PlanRequest) ([]Result, error) {
	if req.TopK < 0 {
		return nil, fmt.Errorf("core: top-k must be positive (got %d)", req.TopK)
	}
	var candidates []string
	var err error
	if req.Candidates == nil && req.Target != nil {
		candidates, err = p.candidatesFor(req.Target)
	} else {
		candidates, err = resolveCandidates(p.loader, Request{
			User:       p.user,
			Target:     req.Target,
			Candidates: req.Candidates,
		})
	}
	if err != nil {
		return nil, err
	}

	// Limit and TopK truncate to the same prefix of the sorted order; the
	// smaller positive one bounds the heap.
	k := req.TopK
	if req.Limit > 0 && (k == 0 || req.Limit < k) {
		k = req.Limit
	}
	heap := req.TopK > 0

	sc.results = sc.results[:0]
	for _, id := range candidates {
		score, err := p.ScoreWith(sc, id)
		if err != nil {
			return nil, err
		}
		if req.Threshold > 0 && score <= req.Threshold {
			continue
		}
		if heap {
			sc.pushTopK(k, Result{ID: id, Score: score})
		} else {
			sc.results = append(sc.results, Result{ID: id, Score: score})
		}
	}
	slices.SortFunc(sc.results, compareResults)
	if !heap && req.Limit > 0 && len(sc.results) > req.Limit {
		sc.results = sc.results[:req.Limit]
	}
	if req.Explain {
		for i := range sc.results {
			ex, err := p.Explain(sc.results[i].ID)
			if err != nil {
				return nil, err
			}
			sc.results[i].Explanation = ex
		}
	}
	return sc.results, nil
}

// candidatesFor resolves a Target's member list, cached per space
// generation so warm ranks skip the member walk and its allocations. Data
// asserted without an event-space change stays invisible to an existing
// plan (see the Plan freshness contract).
func (p *Plan) candidatesFor(target *dl.Expr) ([]string, error) {
	gen := p.space.Generation()
	p.candMu.RLock()
	if p.candGen == gen && p.candTarget != nil && dl.Equal(p.candTarget, target) {
		ids := p.candIDs
		p.candMu.RUnlock()
		return ids, nil
	}
	p.candMu.RUnlock()
	ids, err := resolveCandidates(p.loader, Request{User: p.user, Target: target})
	if err != nil {
		return nil, err
	}
	p.candMu.Lock()
	if p.candGen <= gen {
		p.candGen = gen
		p.candTarget = target
		p.candIDs = ids
	}
	p.candMu.Unlock()
	return ids, nil
}

// pushTopK offers a result to the bounded selection heap living in
// sc.results: a binary heap with the *worst* kept result at the root
// (inverse of compareResults), so a better newcomer evicts the root in
// O(log k). The heap is unordered until the final sort.
func (sc *PlanScratch) pushTopK(k int, r Result) {
	h := sc.results
	if len(h) < k {
		h = append(h, r)
		// Sift up: a node worse than its parent moves toward the root.
		i := len(h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if compareResults(h[i], h[parent]) <= 0 {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
		sc.results = h
		return
	}
	if compareResults(r, h[0]) >= 0 {
		return // not better than the worst kept result
	}
	h[0] = r
	// Sift down: swap with the worse child while a child is worse.
	i := 0
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && compareResults(h[l], h[worst]) > 0 {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && compareResults(h[r], h[worst]) > 0 {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
