package core

import (
	"fmt"

	"repro/internal/dl"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
)

// Plan is a compiled ranking plan: everything about a (user, rule set,
// context epoch) triple that does not depend on the candidate being scored,
// resolved once so that scoring a catalog of n documents costs n× the
// document-side work only. Compilation performs the §6 "early stages" of
// the factorized ranker up front:
//
//  1. Rule contexts are resolved to the user's membership events and rules
//     whose context cannot apply (probability 0) are pruned.
//  2. Every rule's preference view is compiled and its membership events
//     fetched for the whole catalog.
//  3. The surviving rules are partitioned into correlation clusters by
//     their basic-event footprint — the correlated blocks mentioned by the
//     rule's context event or by any of its preference membership events.
//     Rules in different clusters touch disjoint blocks for *every*
//     candidate, so the expectation factorizes across clusters. (This
//     replaces the per-candidate union-find over Space.Independent probes:
//     the footprint partition is candidate-independent and may therefore be
//     slightly coarser than the per-candidate one, which changes only
//     floating-point association order, never the semantics.)
//  4. Per multi-rule cluster the 2^m context-state probability table is
//     precomputed; singleton clusters store the scalar context probability.
//
// Score then evaluates only the document-state distribution per candidate.
// A Plan is immutable after compilation and safe for concurrent use, but it
// answers for the state it was compiled against: the context-state
// distribution is frozen at compile time, so a plan used after the context
// changed keeps ranking under the old context, and a plan whose document
// events were retired (data mutation) fails with "not declared". Callers
// that reuse plans must therefore invalidate them on every data *and*
// context epoch — internal/serve's plan cache keys them by exactly those.
type Plan struct {
	loader *mapping.Loader
	space  *event.Space
	user   string

	rules    []planRule    // every requested rule, in request order
	clusters []planCluster // active (unpruned) rules only
}

// planRule is one rule's candidate-independent compilation product.
type planRule struct {
	rule    prefs.Rule
	ctxEv   *event.Expr
	ctxProb float64
	// members maps candidate id -> preference membership event for every
	// individual the preference view contains; absent ids are non-members
	// (event.False()).
	members map[string]*event.Expr
}

// docEv returns the candidate's membership event in the rule's preference.
func (pr *planRule) docEv(id string) *event.Expr {
	if ev, ok := pr.members[id]; ok {
		return ev
	}
	return event.False()
}

// planCluster is one correlation cluster of active rules.
type planCluster struct {
	rules []int // indices into Plan.rules, ascending request order
	// ctxProbs is the precomputed context-state distribution over the
	// cluster's rules (index = bitmask of "rule context applies"); nil for
	// singleton clusters, whose factor uses ctxProb directly.
	ctxProbs []float64
}

// CompilePlan resolves and compiles the rules for one situated user. The
// compile cost is paid once per (user, rule set, context epoch) instead of
// once per candidate; see the Plan type comment for what is hoisted.
func CompilePlan(l *mapping.Loader, user string, rules []prefs.Rule) (*Plan, error) {
	return compilePlan(l, user, rules, nil)
}

// compilePlan is CompilePlan with an optional candidate restriction: when
// only is non-nil, the footprint partition considers just those candidates'
// preference-membership events. A restricted plan is valid only for
// candidates in the set — the per-request path uses it so a 3-candidate
// RankQuery over a 100k-member preference does not walk 100k events'
// blocks; cacheable catalog-wide plans pass nil.
func compilePlan(l *mapping.Loader, user string, rules []prefs.Rule, only map[string]bool) (*Plan, error) {
	if user == "" {
		return nil, fmt.Errorf("core: request without a user")
	}
	space := l.DB().Space()
	p := &Plan{loader: l, space: space, user: user}

	p.rules = make([]planRule, 0, len(rules))
	for _, rule := range rules {
		if err := rule.Validate(); err != nil {
			return nil, err
		}
		ctxEv, err := l.MembershipEvent(rule.Context, user)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s context: %w", rule.Name, err)
		}
		pCtx, err := space.Prob(ctxEv)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s context: %w", rule.Name, err)
		}
		members, err := l.Members(rule.Preference)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s preference: %w", rule.Name, err)
		}
		p.rules = append(p.rules, planRule{rule: rule, ctxEv: ctxEv, ctxProb: pCtx, members: members})
	}

	if err := p.compileClusters(only); err != nil {
		return nil, err
	}
	return p, nil
}

// compileClusters prunes impossible contexts, partitions the active rules
// by basic-event footprint and precomputes the per-cluster context-state
// tables. only, when non-nil, restricts the document-side footprint to
// those candidates (see compilePlan).
func (p *Plan) compileClusters(only map[string]bool) error {
	var active []int
	for i := range p.rules {
		if p.rules[i].ctxProb > 0 {
			active = append(active, i)
		}
	}

	// Union-find over the active rules, merging rules whose footprints
	// share a correlated block. blockOwner maps each block key to the
	// first active rule that mentioned it.
	parent := make([]int, len(active))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	blockOwner := make(map[string]int)
	footprint := make(map[string]bool)
	for ai, ri := range active {
		clear(footprint)
		st := &p.rules[ri]
		if err := p.space.Blocks(st.ctxEv, footprint); err != nil {
			return fmt.Errorf("core: rule %s context: %w", st.rule.Name, err)
		}
		if only == nil {
			for _, ev := range st.members {
				if err := p.space.Blocks(ev, footprint); err != nil {
					return fmt.Errorf("core: rule %s preference: %w", st.rule.Name, err)
				}
			}
		} else {
			for id := range only {
				if ev, ok := st.members[id]; ok {
					if err := p.space.Blocks(ev, footprint); err != nil {
						return fmt.Errorf("core: rule %s preference: %w", st.rule.Name, err)
					}
				}
			}
		}
		for key := range footprint {
			if owner, ok := blockOwner[key]; ok {
				parent[find(ai)] = find(owner)
			} else {
				blockOwner[key] = ai
			}
		}
	}

	byRoot := make(map[int][]int)
	var roots []int
	for ai, ri := range active {
		root := find(ai)
		if _, ok := byRoot[root]; !ok {
			roots = append(roots, root)
		}
		byRoot[root] = append(byRoot[root], ri)
	}

	p.clusters = make([]planCluster, 0, len(roots))
	for _, root := range roots {
		cl := planCluster{rules: byRoot[root]}
		m := len(cl.rules)
		if m > maxClusterRules {
			return fmt.Errorf("core: correlation cluster of %d rules %w %d", m, ErrClusterBound, maxClusterRules)
		}
		if m > 1 {
			// Precompute the context-state distribution, exactly as the
			// per-candidate path did — identical expressions, so the event
			// space's memo keys match too.
			cl.ctxProbs = make([]float64, 1<<m)
			for mask := 0; mask < 1<<m; mask++ {
				ctxConj := make([]*event.Expr, m)
				for i, ri := range cl.rules {
					if mask&(1<<i) != 0 {
						ctxConj[i] = p.rules[ri].ctxEv
					} else {
						ctxConj[i] = event.Not(p.rules[ri].ctxEv)
					}
				}
				prob, err := p.space.Prob(event.And(ctxConj...))
				if err != nil {
					return err
				}
				cl.ctxProbs[mask] = prob
			}
		}
		p.clusters = append(p.clusters, cl)
	}
	return nil
}

// User returns the situated user the plan was compiled for.
func (p *Plan) User() string { return p.user }

// Rules returns the number of rules the plan was compiled from (including
// pruned ones).
func (p *Plan) Rules() int { return len(p.rules) }

// ActiveRules returns the number of rules whose context can apply.
func (p *Plan) ActiveRules() int {
	n := 0
	for _, cl := range p.clusters {
		n += len(cl.rules)
	}
	return n
}

// Score computes the candidate's ideal-document probability under the
// plan's compiled rule set: only the document-side distribution is
// evaluated here, the context side was resolved at compile time.
func (p *Plan) Score(id string) (float64, error) {
	score := 1.0
	for i := range p.clusters {
		f, err := p.clusterScore(&p.clusters[i], id)
		if err != nil {
			return 0, err
		}
		score *= f
	}
	return score, nil
}

// clusterScore computes one cluster's expected factor for the candidate —
// the same §3.3 semantics as the pre-plan clusterFactor, with the
// context-side tables read instead of recomputed.
func (p *Plan) clusterScore(cl *planCluster, id string) (float64, error) {
	if len(cl.rules) == 1 {
		// Singleton fast path: factor = (1−pC) + pC·(σ·pX + (1−σ)(1−pX)).
		st := &p.rules[cl.rules[0]]
		pX, err := p.space.Prob(st.docEv(id))
		if err != nil {
			return 0, err
		}
		s := st.rule.Sigma
		pC := st.ctxProb
		return (1 - pC) + pC*(s*pX+(1-s)*(1-pX)), nil
	}
	m := len(cl.rules)
	docProbs := make([]float64, 1<<m)
	for mask := 0; mask < 1<<m; mask++ {
		docConj := make([]*event.Expr, m)
		for i, ri := range cl.rules {
			if mask&(1<<i) != 0 {
				docConj[i] = p.rules[ri].docEv(id)
			} else {
				docConj[i] = event.Not(p.rules[ri].docEv(id))
			}
		}
		prob, err := p.space.Prob(event.And(docConj...))
		if err != nil {
			return 0, err
		}
		docProbs[mask] = prob
	}
	total := 0.0
	for g := 0; g < 1<<m; g++ {
		if cl.ctxProbs[g] == 0 {
			continue
		}
		inner := 0.0
		for f := 0; f < 1<<m; f++ {
			if docProbs[f] == 0 {
				continue
			}
			prod := 1.0
			for i, ri := range cl.rules {
				if g&(1<<i) == 0 {
					continue
				}
				if f&(1<<i) != 0 {
					prod *= p.rules[ri].rule.Sigma
				} else {
					prod *= 1 - p.rules[ri].rule.Sigma
				}
			}
			inner += docProbs[f] * prod
		}
		total += cl.ctxProbs[g] * inner
	}
	return total, nil
}

// Explain builds the per-rule contribution trace for one candidate from
// the compiled context probabilities.
func (p *Plan) Explain(id string) (*Explanation, error) {
	ex := &Explanation{}
	for i := range p.rules {
		st := &p.rules[i]
		if st.ctxProb == 0 {
			ex.Rules = append(ex.Rules, RuleContribution{Rule: st.rule.Name, Sigma: st.rule.Sigma, Pruned: true, Factor: 1})
			continue
		}
		pDoc, err := p.space.Prob(st.docEv(id))
		if err != nil {
			return nil, err
		}
		s := st.rule.Sigma
		pCtx := st.ctxProb
		factor := pCtx*(pDoc*s+(1-pDoc)*(1-s)) + (1 - pCtx)
		ex.Rules = append(ex.Rules, RuleContribution{
			Rule:        st.rule.Name,
			ContextProb: pCtx,
			MemberProb:  pDoc,
			Sigma:       s,
			Factor:      factor,
		})
	}
	return ex, nil
}

// PlanRequest describes one ranking task against an already compiled plan:
// Request minus the user and rules, which the plan owns.
type PlanRequest struct {
	Target     *dl.Expr // candidate concept; nil when Candidates is set
	Candidates []string // explicit candidate list (see Request.Candidates)
	Threshold  float64
	Limit      int
	Explain    bool
}

// Rank scores the request's candidates with the compiled plan and returns
// them ordered, thresholded and truncated exactly like Ranker.Rank.
func (p *Plan) Rank(req PlanRequest) ([]Result, error) {
	candidates, err := resolveCandidates(p.loader, Request{
		User:       p.user,
		Target:     req.Target,
		Candidates: req.Candidates,
	})
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(candidates))
	for _, id := range candidates {
		score, err := p.Score(id)
		if err != nil {
			return nil, err
		}
		res := Result{ID: id, Score: score}
		if req.Explain {
			res.Explanation, err = p.Explain(id)
			if err != nil {
				return nil, err
			}
		}
		results = append(results, res)
	}
	return finalize(Request{Threshold: req.Threshold, Limit: req.Limit}, results), nil
}
