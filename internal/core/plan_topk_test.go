package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
	"repro/internal/situation"
	"repro/internal/workload"
)

// tieSetup builds a catalog engineered for score ties: docs come in
// feature-identical pairs, so the rank order is decided by the ID
// tie-break for half the comparisons — exactly what the top-k heap must
// reproduce bit-identically against the full sort.
func tieSetup(t *testing.T) (*Plan, int) {
	t.Helper()
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []string{"Doc", "FA", "FB"} {
		must(l.DeclareConcept(c))
	}
	must(db.Space().Declare("maybe", 0.6))
	const n = 12
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("d%02d", i)
		must(l.AssertConcept("Doc", id, nil))
		switch i % 3 { // three score classes, four docs each
		case 0:
			must(l.AssertConcept("FA", id, nil))
		case 1:
			must(l.AssertConcept("FB", id, event.Basic("maybe")))
		}
	}
	must(situation.New("u").Certain("Ctx").Apply(l))
	rules := []prefs.Rule{
		{Name: "ra", Context: dl.Atom("Ctx"), Preference: dl.Atom("FA"), Sigma: 0.9},
		{Name: "rb", Context: dl.Atom("Ctx"), Preference: dl.Atom("FB"), Sigma: 0.7},
	}
	plan, err := CompilePlan(l, "u", rules)
	if err != nil {
		t.Fatal(err)
	}
	return plan, n
}

// TestTopKMatchesFullSort: Plan.Rank with TopK=k must return exactly the
// first k of the full-sort result — same order, same scores, same ID
// tie-breaking — and k ≥ n must degrade to the full sort.
func TestTopKMatchesFullSort(t *testing.T) {
	plan, n := tieSetup(t)
	req := PlanRequest{Target: dl.Atom("Doc")}
	full, err := plan.Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != n {
		t.Fatalf("full rank returned %d results, want %d", len(full), n)
	}
	ties := 0
	for i := 1; i < len(full); i++ {
		if full[i].Score == full[i-1].Score {
			ties++
		}
	}
	if ties < n/2 {
		t.Fatalf("only %d tied adjacent pairs; the tie-break isn't being exercised", ties)
	}
	for _, k := range []int{1, 2, 3, 5, n - 1, n, n + 7} {
		req.TopK = k
		got, err := plan.Rank(req)
		if err != nil {
			t.Fatal(err)
		}
		want := full[:min(k, n)]
		assertSameRanking(t, fmt.Sprintf("top-%d vs full-sort prefix", k), got, want, 0)
	}
}

// TestTopKWithLimitAndThreshold: TopK composes with the other request
// knobs exactly as truncating the full-sort result would.
func TestTopKWithLimitAndThreshold(t *testing.T) {
	plan, n := tieSetup(t)
	full, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc")})
	if err != nil {
		t.Fatal(err)
	}
	// The smaller of Limit and TopK wins, in either order.
	for _, c := range []struct{ topk, limit, want int }{
		{5, 3, 3}, {3, 5, 3}, {n + 1, 4, 4}, {4, 0, 4},
	} {
		got, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc"), TopK: c.topk, Limit: c.limit})
		if err != nil {
			t.Fatal(err)
		}
		assertSameRanking(t, fmt.Sprintf("topk=%d limit=%d", c.topk, c.limit), got, full[:c.want], 0)
	}
	// Threshold filters before selection: the heap keeps the best k of the
	// survivors, which equals the thresholded full sort's prefix.
	cut := full[len(full)/2].Score
	fullCut, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc"), Threshold: cut})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc"), Threshold: cut, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, "threshold+topk", got, fullCut[:min(2, len(fullCut))], 0)
}

// TestTopKRejected: negative TopK errors on every entry point; a nil
// scratch errors on RankInto.
func TestTopKRejected(t *testing.T) {
	plan, _ := tieSetup(t)
	if _, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc"), TopK: -1}); err == nil {
		t.Fatal("negative TopK accepted by Plan.Rank")
	} else if !strings.Contains(err.Error(), "top-k must be positive") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := plan.RankInto(nil, PlanRequest{Target: dl.Atom("Doc")}); err == nil {
		t.Fatal("nil scratch accepted by RankInto")
	}
	l, rules := correlatedSetup(t)
	for _, ranker := range []Ranker{NewNaiveRanker(l), NewFactorizedRanker(l)} {
		if _, err := ranker.Rank(Request{User: "u", Target: dl.Atom("Doc"), Rules: rules, TopK: -2}); err == nil {
			t.Fatalf("negative TopK accepted by %s", ranker.Name())
		}
	}
}

// TestRequestTopKAcrossRankers: Request.TopK must mean "first k of the
// full result" for every ranker, not just the plan path.
func TestRequestTopKAcrossRankers(t *testing.T) {
	l, rules := correlatedSetup(t)
	for _, ranker := range []Ranker{NewNaiveRanker(l), NewFactorizedRanker(l)} {
		full, err := ranker.Rank(Request{User: "u", Target: dl.Atom("Doc"), Rules: rules})
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= len(full)+1; k++ {
			got, err := ranker.Rank(Request{User: "u", Target: dl.Atom("Doc"), Rules: rules, TopK: k})
			if err != nil {
				t.Fatal(err)
			}
			assertSameRanking(t, fmt.Sprintf("%s top-%d", ranker.Name(), k), got, full[:min(k, len(full))], 0)
		}
	}
}

// TestDocCacheInvalidatesOnRetire: a warm document-distribution cache must
// not outlive the retirement of a data event the plan depends on — the
// generation bump wipes it, and the recompute surfaces "not declared"
// instead of serving a stale score.
func TestDocCacheInvalidatesOnRetire(t *testing.T) {
	l, rules := correlatedSetup(t)
	plan, err := CompilePlan(l, "u", rules)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc")}); err != nil {
		t.Fatal(err) // warm the cache
	}
	// d2's F1 membership hinges on solo_a; retiring it invalidates d2's
	// cached distribution.
	if err := l.DB().Space().Retire("solo_a"); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc")}); err == nil {
		t.Fatal("rank served stale cached distributions across a retirement")
	} else if !strings.Contains(err.Error(), "not declared") {
		t.Fatalf("unexpected post-retire error: %v", err)
	}
}

// TestPlanScratchDocCacheSoak hammers one plan from concurrent rankers —
// some through the pooled-scratch Rank, some through caller-owned
// RankInto arenas — while the session context churns underneath it,
// retiring the old epoch's ctx_* events and bumping the space generation
// on every apply. Every rank must keep returning the plan's compile-time
// ranking bit-for-bit (the context side is frozen; the doc side recomputes
// to identical values after each wipe). Run under -race in CI.
func TestPlanScratchDocCacheSoak(t *testing.T) {
	const rulesN = 4
	d, err := workload.Generate(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyBenchContext(rulesN, false); err != nil {
		t.Fatal(err)
	}
	rules, err := d.Rules(rulesN)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompilePlan(d.Loader, d.User, rules)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := plan.Rank(PlanRequest{Target: dl.Atom("TvProgram")})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	done := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := NewPlanScratch()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var got []Result
				var err error
				if w%2 == 0 {
					got, err = plan.Rank(PlanRequest{Target: dl.Atom("TvProgram")})
				} else {
					got, err = plan.RankInto(sc, PlanRequest{Target: dl.Atom("TvProgram"), TopK: 5})
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d rank %d: %w", w, i, err)
					return
				}
				want := baseline
				if w%2 != 0 {
					want = baseline[:5]
				}
				if len(got) != len(want) {
					errs <- fmt.Errorf("worker %d rank %d: %d results, want %d", w, i, len(got), len(want))
					return
				}
				for j := range want {
					if got[j].ID != want[j].ID || got[j].Score != want[j].Score {
						errs <- fmt.Errorf("worker %d rank %d drifted at %d: %s:%v, want %s:%v",
							w, i, j, got[j].ID, got[j].Score, want[j].ID, want[j].Score)
						return
					}
				}
			}
		}(w)
	}
	// Churn: every apply retires the previous epoch's ctx events and bumps
	// the invalidation generation, wiping the doc cache mid-traffic.
	for i := 0; i < 15; i++ {
		if err := d.ApplyBenchContext(rulesN, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
