package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/mapping"
)

// ViewRanker is the paper's §5 naive implementation: the ranking lives in
// the database as a "big preference view" that assigns every candidate
// tuple its probability of being the ideal document, and the user's query
// is answered by selecting from that view ordered by the probability.
//
// The defining SQL of the big view enumerates every combination of
// context-feature states and document-feature states — "for each new rule,
// both the amount of possible combinations of context features and the
// amount of possible combination of tuple features … are doubled, [which]
// leads to highly exponential query times" — so both the view text and its
// evaluation grow as Θ(4^k) in the number of rules k, reproducing the
// paper's bottleneck measurement (experiment E3).
type ViewRanker struct {
	loader *mapping.Loader
	seq    atomic.Int64
}

// NewViewRanker builds the view-based ranker over the loader.
func NewViewRanker(l *mapping.Loader) *ViewRanker { return &ViewRanker{loader: l} }

// Name implements Ranker.
func (r *ViewRanker) Name() string { return "view" }

// maxViewRules caps the size of the generated view text (4^k terms).
const maxViewRules = 10

func sqlQuote(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

// BuildPreferenceView compiles the big preference view for the request and
// returns its name. Exposed so callers (and benchmarks) can separate view
// construction from query execution; Rank calls it internally.
func (r *ViewRanker) BuildPreferenceView(req Request) (string, error) {
	if req.User == "" {
		return "", fmt.Errorf("core: request without a user")
	}
	if req.Target == nil {
		return "", fmt.Errorf("core: request without a target concept")
	}
	k := len(req.Rules)
	if k > maxViewRules {
		return "", fmt.Errorf("core: view ranker limited to %d rules (the view doubles per rule), got %d", maxViewRules, k)
	}
	targetView, err := r.loader.ViewFor(req.Target)
	if err != nil {
		return "", err
	}
	// One preference view and one single-row context relation per rule.
	prefViews := make([]string, k)
	ctxViews := make([]string, k)
	for i, rule := range req.Rules {
		if err := rule.Validate(); err != nil {
			return "", err
		}
		pv, err := r.loader.ViewFor(rule.Preference)
		if err != nil {
			return "", fmt.Errorf("core: rule %s preference: %w", rule.Name, err)
		}
		cv, err := r.loader.ViewFor(rule.Context)
		if err != nil {
			return "", fmt.Errorf("core: rule %s context: %w", rule.Name, err)
		}
		prefViews[i] = pv
		ctxViews[i] = cv
	}

	var from strings.Builder
	fmt.Fprintf(&from, "%s d", targetView)
	for i, pv := range prefViews {
		fmt.Fprintf(&from, " LEFT JOIN %s p%d ON d.id = p%d.id", pv, i, i)
	}
	for i, cv := range ctxViews {
		fmt.Fprintf(&from, " LEFT JOIN (SELECT ev FROM %s WHERE id = %s) g%d ON TRUE",
			cv, sqlQuote(req.User), i)
	}

	// The §3.3 double sum, expanded term by term. A LEFT JOIN miss yields
	// NULL, which the EV_* builtins read as the impossible event — exactly
	// "the tuple is not in the concept".
	var score strings.Builder
	score.WriteString("0")
	for g := 0; g < 1<<k; g++ {
		for f := 0; f < 1<<k; f++ {
			coeff := 1.0
			for i := 0; i < k; i++ {
				if g&(1<<i) == 0 {
					continue
				}
				if f&(1<<i) != 0 {
					coeff *= req.Rules[i].Sigma
				} else {
					coeff *= 1 - req.Rules[i].Sigma
				}
			}
			ctxTerms := make([]string, k)
			docTerms := make([]string, k)
			for i := 0; i < k; i++ {
				if g&(1<<i) != 0 {
					ctxTerms[i] = fmt.Sprintf("g%d.ev", i)
				} else {
					ctxTerms[i] = fmt.Sprintf("EV_NOT(g%d.ev)", i)
				}
				if f&(1<<i) != 0 {
					docTerms[i] = fmt.Sprintf("p%d.ev", i)
				} else {
					docTerms[i] = fmt.Sprintf("EV_NOT(p%d.ev)", i)
				}
			}
			ctxExpr, docExpr := "EV_TRUE()", "EV_TRUE()"
			if k > 0 {
				ctxExpr = "EV_AND(" + strings.Join(ctxTerms, ", ") + ")"
				docExpr = "EV_AND(" + strings.Join(docTerms, ", ") + ")"
			}
			fmt.Fprintf(&score, " + PROB(%s) * PROB(%s) * %g", ctxExpr, docExpr, coeff)
		}
	}

	name := fmt.Sprintf("pref_big_%d", r.seq.Add(1))
	ddl := fmt.Sprintf("CREATE OR REPLACE VIEW %s AS SELECT d.id AS id, (%s) AS score FROM %s",
		name, score.String(), from.String())
	if _, err := r.loader.DB().Exec(ddl); err != nil {
		return "", fmt.Errorf("core: building preference view: %w", err)
	}
	return name, nil
}

// Rank implements Ranker: it builds the big preference view and then runs
// the paper's introductory query shape against it —
//
//	SELECT name, preferencescore FROM Programs
//	WHERE preferencescore > θ ORDER BY preferencescore DESC.
func (r *ViewRanker) Rank(req Request) ([]Result, error) {
	view, err := r.BuildPreferenceView(req)
	if err != nil {
		return nil, err
	}
	q := fmt.Sprintf("SELECT id, score FROM %s WHERE score > %g ORDER BY score DESC, id ASC", view, req.Threshold)
	if req.Limit > 0 {
		q += fmt.Sprintf(" LIMIT %d", req.Limit)
	}
	res, err := r.loader.DB().Query(q)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(res.Rows))
	_, states, rerr := resolveForExplain(r.loader, req)
	for _, row := range res.Rows {
		result := Result{ID: row[0].S, Score: row[1].F}
		if req.Explain {
			if rerr != nil {
				return nil, rerr
			}
			exp, err := explain(r.loader.DB().Space(), states, result.ID)
			if err != nil {
				return nil, err
			}
			result.Explanation = exp
		}
		out = append(out, result)
	}
	return out, nil
}

// resolveForExplain defers the (comparatively cheap) event resolution until
// an explanation is actually requested.
func resolveForExplain(l *mapping.Loader, req Request) ([]string, []*ruleState, error) {
	if !req.Explain {
		return nil, nil, nil
	}
	return resolve(l, req)
}
