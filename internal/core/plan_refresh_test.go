package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
	"repro/internal/situation"
)

// assertBitIdentical fails unless the two result lists agree exactly —
// same ids, same order, and float64-equal scores. Refresh promises scores
// bit-identical to a fresh compile (same partition, same association
// order), so no epsilon is allowed here.
func assertBitIdentical(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("%s: result %d = %s:%v, want %s:%v",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// TestRefreshMatchesFreshCompile walks a plan through successive context
// applies via Refresh and checks every intermediate ranking bit-identical
// to a from-scratch CompilePlan of the same state.
func TestRefreshMatchesFreshCompile(t *testing.T) {
	l, rules := correlatedSetup(t)
	plan, err := CompilePlan(l, "u", rules)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the doc-distribution cache so the refresh has something to adopt.
	if _, err := plan.Rank(PlanRequest{Target: dl.Atom("Doc")}); err != nil {
		t.Fatal(err)
	}
	contexts := []*situation.Context{
		// Same shape, different probabilities: the single-cluster change.
		situation.New("u").
			AddExclusive("location", []string{"Kitchen", "Living"}, []float64{0.2, 0.7}).
			Add("Weekend", 0.5),
		// Drop the exclusive group: partition changes, rules re-cluster.
		situation.New("u").Add("Kitchen", 0.4).Add("Weekend", 0.9),
		// Prune everything but one rule.
		situation.New("u").Add("Weekend", 0.3),
		// And back to the full shape.
		situation.New("u").
			AddExclusive("location", []string{"Kitchen", "Living"}, []float64{0.5, 0.4}).
			Add("Weekend", 0.8),
	}
	for i, ctx := range contexts {
		if err := ctx.Apply(l); err != nil {
			t.Fatal(err)
		}
		refreshed, err := plan.Refresh()
		if err != nil {
			t.Fatalf("round %d: refresh: %v", i, err)
		}
		fresh, err := CompilePlan(l, "u", rules)
		if err != nil {
			t.Fatal(err)
		}
		got, err := refreshed.Rank(PlanRequest{Target: dl.Atom("Doc")})
		if err != nil {
			t.Fatalf("round %d: refreshed rank: %v", i, err)
		}
		want, err := fresh.Rank(PlanRequest{Target: dl.Atom("Doc")})
		if err != nil {
			t.Fatalf("round %d: fresh rank: %v", i, err)
		}
		assertBitIdentical(t, fmt.Sprintf("round %d", i), got, want)
		plan = refreshed
	}
}

// TestRefreshRestrictedPlanNotRefreshable: a candidate-restricted compile
// (the per-request path) must refuse incremental maintenance.
func TestRefreshRestrictedPlanNotRefreshable(t *testing.T) {
	l, rules := correlatedSetup(t)
	plan, err := compilePlan(l, "u", rules, map[string]bool{"d1": true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Refresh(); !errors.Is(err, ErrPlanNotRefreshable) {
		t.Fatalf("refresh of restricted plan: err = %v, want ErrPlanNotRefreshable", err)
	}
}

// TestRefreshChurnSoakEquivalence is the randomized churn soak: a catalog
// with correlated document events, preferences that reference context
// concepts, domain-reading (¬/nominal) preferences, and a context stream
// that re-shapes the exclusive-group structure, prunes and unprunes rules,
// registers fresh individuals mid-stream and occasionally mutates data.
// After every mutation the delta-maintained plan's scores must be
// bit-identical to a fresh CompilePlan of the same state; after data
// mutations (which void the refresh contract) the baseline restarts from a
// fresh compile exactly like the serving layer's epoch discipline does.
func TestRefreshChurnSoakEquivalence(t *testing.T) {
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []string{"Doc", "F1", "F2", "F3", "F4", "Room1", "Room2", "Room3", "Weekend", "Busy"} {
		must(l.DeclareConcept(c))
	}
	rng := rand.New(rand.NewSource(11))
	docCount := 0
	addDoc := func() {
		id := fmt.Sprintf("doc%03d", docCount)
		docCount++
		must(l.AssertConcept("Doc", id, nil))
		// Half the docs share a correlated event with a neighbour, the rest
		// carry independent uncertainty or certain features.
		for fi, f := range []string{"F1", "F2", "F3", "F4"} {
			switch rng.Intn(4) {
			case 0:
				must(l.AssertConcept(f, id, nil))
			case 1:
				ev := fmt.Sprintf("e_%s_%d", id, fi)
				must(db.Space().Declare(ev, 0.2+0.6*rng.Float64()))
				must(l.AssertConcept(f, id, event.Basic(ev)))
			case 2:
				if docCount > 1 {
					ev := fmt.Sprintf("e_doc%03d_%d", rng.Intn(docCount-1), fi)
					if db.Space().Declared(ev) {
						must(l.AssertConcept(f, id, event.Basic(ev)))
					}
				}
			}
		}
	}
	for i := 0; i < 30; i++ {
		addDoc()
	}
	rules := []prefs.Rule{
		{Name: "r1", Context: dl.Atom("Room1"), Preference: dl.Atom("F1"), Sigma: 0.9},
		{Name: "r2", Context: dl.Atom("Room2"), Preference: dl.Atom("F2"), Sigma: 0.7},
		{Name: "r3", Context: dl.Atom("Weekend"), Preference: dl.And(dl.Atom("F1"), dl.Atom("F3")), Sigma: 0.8},
		// Domain-sensitive preference (¬ reads dl_domain).
		{Name: "r4", Context: dl.Atom("Busy"), Preference: dl.And(dl.Atom("F2"), dl.Not(dl.Atom("F4"))), Sigma: 0.35},
		// Preference referencing a context concept: membership changes with
		// the context itself, forcing the re-fetch-and-diff path.
		{Name: "r5", Context: dl.Atom("Room3"), Preference: dl.Or(dl.Atom("F4"), dl.Atom("Room1")), Sigma: 0.6},
	}
	applyRandomCtx := func() {
		ctx := situation.New("u")
		if rng.Intn(2) == 0 {
			probs := []float64{0.3 + 0.3*rng.Float64(), 0.2 * rng.Float64(), 0.1 * rng.Float64()}
			ctx.AddExclusive("room", []string{"Room1", "Room2", "Room3"}, probs)
		} else {
			for _, r := range []string{"Room1", "Room2", "Room3"} {
				if rng.Intn(2) == 0 {
					ctx.Add(r, rng.Float64())
				}
			}
		}
		if rng.Intn(3) > 0 {
			ctx.Add("Weekend", rng.Float64())
		}
		if rng.Intn(3) == 0 {
			ctx.Certain("Busy")
		}
		if rng.Intn(8) == 0 {
			// A first-seen individual: grows dl_domain mid-stream, which the
			// domain-sensitive rules must notice.
			ctx.CertainFor(fmt.Sprintf("guest%02d", rng.Intn(50)), "Room1")
		}
		must(ctx.Apply(l))
	}

	applyRandomCtx()
	prev, err := CompilePlan(l, "u", rules)
	if err != nil {
		t.Fatal(err)
	}
	req := PlanRequest{Target: dl.Atom("Doc")}
	if _, err := prev.Rank(req); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 80; round++ {
		if rng.Intn(10) == 0 {
			// Data mutation: refresh contract void, restart from a fresh
			// compile (the serving layer's data-epoch bump).
			addDoc()
			prev, err = CompilePlan(l, "u", rules)
			if err != nil {
				t.Fatal(err)
			}
			continue
		}
		applyRandomCtx()
		refreshed, err := prev.Refresh()
		if err != nil {
			t.Fatalf("round %d: refresh: %v", round, err)
		}
		fresh, err := CompilePlan(l, "u", rules)
		if err != nil {
			t.Fatal(err)
		}
		got, err := refreshed.Rank(req)
		if err != nil {
			t.Fatalf("round %d: refreshed rank: %v", round, err)
		}
		want, err := fresh.Rank(req)
		if err != nil {
			t.Fatalf("round %d: fresh rank: %v", round, err)
		}
		assertBitIdentical(t, fmt.Sprintf("round %d", round), got, want)
		// Top-k selection must agree too (same total order).
		gotK, err := refreshed.Rank(PlanRequest{Target: dl.Atom("Doc"), TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, fmt.Sprintf("round %d topk", round), gotK, want[:5])
		prev = refreshed
	}
}
