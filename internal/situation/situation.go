// Package situation models the situated user (§2.3): the context of the
// user at query time as a set of uncertain concept memberships acquired
// from (simulated) sensors. Each sensed membership is tied to a fresh basic
// event in the database's event space, so downstream probability
// computations respect correlations — in particular mutually exclusive
// readings such as "a person can only be at a single place at one moment"
// (§4.1) become exclusive event groups.
package situation

import (
	"fmt"
	"math/rand"
	"regexp"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/mapping"
)

// Measurement is one sensed context assertion: the individual is a member
// of the context concept with the given probability. Measurements sharing a
// non-empty Exclusive label are mutually exclusive alternatives (their
// probabilities must sum to at most 1).
type Measurement struct {
	Concept    string
	Individual string // empty means "the situated user"
	Prob       float64
	Exclusive  string
	Source     string // sensor name, for traceability
}

// Context is the situation of one user at one instant.
type Context struct {
	User         string
	Measurements []Measurement
}

// New returns an empty context for the given user individual.
func New(user string) *Context { return &Context{User: user} }

// Certain adds a certain membership of the user in the concept.
func (c *Context) Certain(concept string) *Context {
	return c.Add(concept, 1)
}

// Add adds an independent uncertain membership of the user in the concept.
func (c *Context) Add(concept string, prob float64) *Context {
	c.Measurements = append(c.Measurements, Measurement{Concept: concept, Prob: prob})
	return c
}

// CertainFor adds a certain membership of another individual in the
// concept — used when one context snapshot covers several users at once
// (e.g. a group watching TV together, §6 "Modeling multiple users").
func (c *Context) CertainFor(individual, concept string) *Context {
	return c.AddFor(individual, concept, 1)
}

// AddFor adds an uncertain membership of another individual in the concept.
func (c *Context) AddFor(individual, concept string, prob float64) *Context {
	c.Measurements = append(c.Measurements, Measurement{
		Concept: concept, Individual: individual, Prob: prob,
	})
	return c
}

// AddExclusive adds a group of mutually exclusive memberships (e.g. one
// concept per room). The group label must be unique within the context.
func (c *Context) AddExclusive(group string, concepts []string, probs []float64) *Context {
	for i, concept := range concepts {
		c.Measurements = append(c.Measurements, Measurement{
			Concept:   concept,
			Prob:      probs[i],
			Exclusive: group,
		})
	}
	return c
}

// ConceptNames returns the distinct context concepts mentioned, in first-
// appearance order.
func (c *Context) ConceptNames() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range c.Measurements {
		if !seen[m.Concept] {
			seen[m.Concept] = true
			out = append(out, m.Concept)
		}
	}
	return out
}

// epoch provides fresh basic-event names across repeated Apply calls.
var epoch atomic.Int64

// ctxEventName parses the basic-event names Apply declares:
// ctx_<epoch>_<measurement index>_<concept>.
var ctxEventName = regexp.MustCompile(`^ctx_(\d+)_\d+_(.+)$`)

// AdoptApplied prepares a loader restored from a snapshot for context
// applies. The applied-context record itself survives the round trip
// through the dl_ctx table (adopted by mapping.NewLoader); this function
// advances the process-wide epoch counter past every restored ctx_* epoch
// so fresh declarations can never collide with restored names, and — for
// degraded snapshots whose dl_ctx record is missing — reconstructs the
// record from the ctx_* event names so the events are still retired by the
// first apply (certain-measurement concepts are not recoverable that way;
// the dl_ctx record is the authoritative source).
func AdoptApplied(l *mapping.Loader) {
	var events, concepts []string
	seen := make(map[string]bool)
	for _, d := range l.DB().Space().Decls() {
		m := ctxEventName.FindStringSubmatch(d.Name)
		if m == nil {
			continue
		}
		events = append(events, d.Name)
		if e, err := strconv.ParseInt(m[1], 10, 64); err == nil {
			for {
				cur := epoch.Load()
				if e <= cur || epoch.CompareAndSwap(cur, e) {
					break
				}
			}
		}
		if c := m[2]; !seen[c] {
			seen[c] = true
			concepts = append(concepts, c)
		}
	}
	if prevConcepts, prevEvents := l.AppliedContext(); len(prevConcepts) == 0 && len(prevEvents) == 0 && len(events) > 0 {
		l.SetAppliedContext(concepts, events)
	}
}

// Apply pushes the context into the loader: it declares the context
// concepts, clears both their previous assertions and those of concepts the
// previous context asserted (dynamic context is acquired anew at each
// query, §5), retires the previous apply's basic events from the event
// space, declares fresh basic events carrying the measurement
// probabilities, and asserts the memberships.
//
// The per-loader record of what the last apply asserted and declared lives
// on the loader itself (Loader.AppliedContext / SetAppliedContext), so
// repeated applies on one loader — including an empty context, the
// "retract everything" case — keep the event space bounded by the live
// vocabulary instead of accumulating one epoch of ctx_* declarations per
// apply. On a mid-apply failure the record conservatively keeps the union
// of everything possibly still asserted or declared; the next apply
// finishes the cleanup.
func (c *Context) Apply(l *mapping.Loader) error {
	for _, m := range c.Measurements {
		// Positive form so NaN is rejected too (NaN fails every comparison,
		// so `< 0 || > 1` would let it into the event space).
		if !(m.Prob >= 0 && m.Prob <= 1) {
			return fmt.Errorf("situation: measurement %s has probability %g", m.Concept, m.Prob)
		}
	}
	e := epoch.Add(1)
	space := l.DB().Space()
	prevConcepts, prevEvents := l.AppliedContext()
	newConcepts := c.ConceptNames()
	seen := make(map[string]bool, len(prevConcepts)+len(newConcepts))
	var toClear []string
	for _, name := range append(append([]string(nil), prevConcepts...), newConcepts...) {
		if !seen[name] {
			seen[name] = true
			toClear = append(toClear, name)
		}
	}
	// record saves the conservative failure state: every concept of the
	// union that is actually declared (an undeclarable concept — e.g. a
	// table-name collision — holds no assertions and must not poison later
	// cleanup applies) plus the given still-declared events.
	record := func(events []string) {
		var kept []string
		for _, name := range toClear {
			if l.HasConcept(name) {
				kept = append(kept, name)
			}
		}
		l.SetAppliedContext(kept, events)
	}
	for _, name := range toClear {
		if err := l.DeclareConcept(name); err != nil {
			record(prevEvents)
			return err
		}
		if err := l.ClearConcept(name); err != nil {
			record(prevEvents)
			return err
		}
	}
	// Every previous assertion is gone, so the previous epoch's events are
	// unreferenced: retire them before declaring this epoch's. Events
	// already gone (retired externally) are skipped rather than failing the
	// apply.
	live := prevEvents[:0]
	for _, n := range prevEvents {
		if space.Declared(n) {
			live = append(live, n)
		}
	}
	if err := space.Retire(live...); err != nil {
		record(live)
		return err
	}
	var declared []string
	fail := func(err error) error {
		record(declared)
		return err
	}
	// Group measurements by exclusivity label.
	groups := make(map[string][]int)
	var order []string
	for i, m := range c.Measurements {
		groups[m.Exclusive] = append(groups[m.Exclusive], i)
		if len(groups[m.Exclusive]) == 1 && m.Exclusive != "" {
			order = append(order, m.Exclusive)
		}
	}
	assert := func(i int, ev *event.Expr) error {
		m := c.Measurements[i]
		ind := m.Individual
		if ind == "" {
			ind = c.User
		}
		return l.AssertConcept(m.Concept, ind, ev)
	}
	// Independent measurements.
	for _, i := range groups[""] {
		m := c.Measurements[i]
		if m.Prob == 1 {
			if err := assert(i, event.True()); err != nil {
				return fail(err)
			}
			continue
		}
		name := fmt.Sprintf("ctx_%d_%d_%s", e, i, m.Concept)
		if err := space.Declare(name, m.Prob); err != nil {
			return fail(err)
		}
		declared = append(declared, name)
		if err := assert(i, event.Basic(name)); err != nil {
			return fail(err)
		}
	}
	// Exclusive groups.
	for _, g := range order {
		idxs := groups[g]
		names := make([]string, len(idxs))
		probs := make([]float64, len(idxs))
		for j, i := range idxs {
			names[j] = fmt.Sprintf("ctx_%d_%d_%s", e, i, c.Measurements[i].Concept)
			probs[j] = c.Measurements[i].Prob
		}
		if err := space.DeclareExclusive(names, probs); err != nil {
			return fail(fmt.Errorf("situation: group %q: %w", g, err))
		}
		declared = append(declared, names...)
		for j, i := range idxs {
			if err := assert(i, event.Basic(names[j])); err != nil {
				return fail(err)
			}
		}
	}
	l.SetAppliedContext(newConcepts, declared)
	return nil
}

// Sensor contributes measurements to a context. Sensors are simulated: they
// observe a hidden ground truth and emit a noisy probability distribution,
// which is exactly the uncertainty shape the paper attributes to sensed
// context (§1, §3.3).
type Sensor interface {
	Name() string
	Sense(c *Context) error
}

// ClockSensor derives calendar context concepts from a wall-clock time. A
// clock is certain, so all memberships have probability 1: Weekend or
// Workday, plus Morning/Afternoon/Evening/Night, plus Breakfast during the
// morning meal window.
type ClockSensor struct {
	Now time.Time
}

// Name implements Sensor.
func (ClockSensor) Name() string { return "clock" }

// Sense implements Sensor.
func (s ClockSensor) Sense(c *Context) error {
	wd := s.Now.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		c.Certain("Weekend")
	} else {
		c.Certain("Workday")
	}
	h := s.Now.Hour()
	switch {
	case h >= 6 && h < 12:
		c.Certain("Morning")
	case h >= 12 && h < 18:
		c.Certain("Afternoon")
	case h >= 18 && h < 23:
		c.Certain("Evening")
	default:
		c.Certain("Night")
	}
	if h >= 7 && h < 10 {
		c.Certain("Breakfast")
	}
	return nil
}

// LocationSensor simulates a room-level positioning system: it knows the
// true room and an accuracy, and spreads the remaining mass uniformly over
// the other rooms. All room memberships form one exclusive group.
type LocationSensor struct {
	Rooms    []string // concept names, e.g. "InKitchen"
	TrueRoom string
	Accuracy float64 // probability mass assigned to the true room
	Rng      *rand.Rand
}

// Name implements Sensor.
func (LocationSensor) Name() string { return "location" }

// Sense implements Sensor.
func (s LocationSensor) Sense(c *Context) error {
	if len(s.Rooms) == 0 {
		return fmt.Errorf("situation: location sensor has no rooms")
	}
	if s.Accuracy < 0 || s.Accuracy > 1 {
		return fmt.Errorf("situation: accuracy %g out of [0,1]", s.Accuracy)
	}
	trueIdx := -1
	for i, r := range s.Rooms {
		if r == s.TrueRoom {
			trueIdx = i
		}
	}
	if trueIdx < 0 {
		return fmt.Errorf("situation: true room %q not among rooms", s.TrueRoom)
	}
	probs := make([]float64, len(s.Rooms))
	rest := (1 - s.Accuracy) / float64(max(len(s.Rooms)-1, 1))
	for i := range probs {
		if i == trueIdx {
			probs[i] = s.Accuracy
		} else {
			probs[i] = rest
		}
	}
	// Optional sensor jitter: redistribute a little mass randomly while
	// keeping a valid distribution.
	if s.Rng != nil && len(s.Rooms) > 1 {
		j := s.Rng.Intn(len(s.Rooms))
		delta := probs[trueIdx] * 0.05
		if j != trueIdx {
			probs[trueIdx] -= delta
			probs[j] += delta
		}
	}
	c.AddExclusive("location", s.Rooms, probs)
	return nil
}

// ActivitySensor simulates activity recognition with a softmax-like
// distribution peaked at the true activity.
type ActivitySensor struct {
	Activities   []string
	TrueActivity string
	Confidence   float64
}

// Name implements Sensor.
func (ActivitySensor) Name() string { return "activity" }

// Sense implements Sensor.
func (s ActivitySensor) Sense(c *Context) error {
	if len(s.Activities) == 0 {
		return fmt.Errorf("situation: activity sensor has no activities")
	}
	trueIdx := -1
	for i, a := range s.Activities {
		if a == s.TrueActivity {
			trueIdx = i
		}
	}
	if trueIdx < 0 {
		return fmt.Errorf("situation: true activity %q not among activities", s.TrueActivity)
	}
	if s.Confidence < 0 || s.Confidence > 1 {
		return fmt.Errorf("situation: confidence %g out of [0,1]", s.Confidence)
	}
	probs := make([]float64, len(s.Activities))
	rest := (1 - s.Confidence) / float64(max(len(s.Activities)-1, 1))
	for i := range probs {
		if i == trueIdx {
			probs[i] = s.Confidence
		} else {
			probs[i] = rest
		}
	}
	c.AddExclusive("activity", s.Activities, probs)
	return nil
}

// SenseAll builds a context for the user by running every sensor.
func SenseAll(user string, sensors ...Sensor) (*Context, error) {
	c := New(user)
	for _, s := range sensors {
		if err := s.Sense(c); err != nil {
			return nil, fmt.Errorf("situation: sensor %s: %w", s.Name(), err)
		}
	}
	return c, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
