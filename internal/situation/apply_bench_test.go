package situation

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/mapping"
)

func BenchmarkApplyChurn(b *testing.B) {
	l := mapping.NewLoader(engine.New(), nil)
	ctx := New("peter").
		Add("Breakfast", 0.9).
		AddExclusive("location", []string{"InKitchen", "InOffice", "InHall"}, []float64{0.6, 0.3, 0.1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.Apply(l); err != nil {
			b.Fatal(err)
		}
	}
}
