package situation

import (
	"math"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/mapping"
)

// TestApplyRetiresPreviousEvents: reacquiring context (§5) must not leave
// the previous epoch's basic events behind in the event space.
func TestApplyRetiresPreviousEvents(t *testing.T) {
	l := mapping.NewLoader(engine.New(), nil)
	space := l.DB().Space()
	ctx := New("peter").
		Add("Breakfast", 0.9).
		AddExclusive("location", []string{"InKitchen", "InOffice"}, []float64{0.7, 0.2})
	if err := ctx.Apply(l); err != nil {
		t.Fatal(err)
	}
	len1, groups1 := space.Len(), space.Groups()
	if len1 != 3 || groups1 != 1 {
		t.Fatalf("after first apply: Len = %d, Groups = %d", len1, groups1)
	}
	_, events1 := l.AppliedContext()
	for i := 0; i < 50; i++ {
		if err := ctx.Apply(l); err != nil {
			t.Fatal(err)
		}
	}
	if space.Len() != len1 || space.Groups() != groups1 {
		t.Fatalf("space grew under re-apply: Len %d -> %d, Groups %d -> %d",
			len1, space.Len(), groups1, space.Groups())
	}
	// The first epoch's events are retired, not merely orphaned.
	for _, n := range events1 {
		if space.Declared(n) {
			t.Fatalf("first-epoch event %s still declared after churn", n)
		}
	}
	// Probabilities are unchanged by retirement.
	ev, err := l.MembershipEvent(dl.And(dl.Atom("Breakfast"), dl.Atom("InKitchen")), "peter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := space.Prob(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.9*0.7) > 1e-9 {
		t.Fatalf("P(Breakfast∧InKitchen) = %g, want 0.63", p)
	}
}

// TestApplyEmptyContextRetractsAndRetiresEverything: the "no context"
// snapshot is the full-retraction case (e.g. the last session dropping).
func TestApplyEmptyContextRetractsAndRetiresEverything(t *testing.T) {
	l := mapping.NewLoader(engine.New(), nil)
	space := l.DB().Space()
	ctx := New("peter").
		Add("Breakfast", 0.9).
		AddExclusive("location", []string{"InKitchen", "InOffice"}, []float64{0.7, 0.2})
	if err := ctx.Apply(l); err != nil {
		t.Fatal(err)
	}
	if err := New("peter").Apply(l); err != nil {
		t.Fatal(err)
	}
	if space.Len() != 0 || space.Groups() != 0 {
		t.Fatalf("empty apply left Len = %d, Groups = %d", space.Len(), space.Groups())
	}
	p, err := prob2(l, "Breakfast", "peter")
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("retracted membership still has P = %g", p)
	}
	concepts, events := l.AppliedContext()
	if len(concepts) != 0 || len(events) != 0 {
		t.Fatalf("applied-context record not empty: %v / %v", concepts, events)
	}
}

// TestApplyRejectsNaNProbability: NaN fails every comparison, so only the
// positive-form validation catches it before it poisons the event space.
func TestApplyRejectsNaNProbability(t *testing.T) {
	l := mapping.NewLoader(engine.New(), nil)
	if err := New("u").Add("C", math.NaN()).Apply(l); err == nil {
		t.Fatal("NaN probability accepted")
	}
	if n := l.DB().Space().Len(); n != 0 {
		t.Fatalf("NaN measurement declared %d events", n)
	}
}

func prob2(l *mapping.Loader, concept, ind string) (float64, error) {
	ev, err := l.MembershipEvent(dl.Atom(concept), ind)
	if err != nil {
		return 0, err
	}
	return l.DB().Space().Prob(ev)
}

// TestApplyFailureIsCleanedUpByNextApply: a mid-apply failure may leave
// partial declarations; the next successful apply must retract and retire
// them, so failures do not leak either.
func TestApplyFailureIsCleanedUpByNextApply(t *testing.T) {
	l := mapping.NewLoader(engine.New(), nil)
	space := l.DB().Space()
	good := New("peter").Add("Breakfast", 0.9)
	if err := good.Apply(l); err != nil {
		t.Fatal(err)
	}
	// Independent measurements apply before exclusive groups, so the
	// overfull group fails after Breakfast's fresh event was declared.
	bad := New("peter").
		Add("Breakfast", 0.8).
		AddExclusive("location", []string{"InKitchen", "InOffice"}, []float64{0.8, 0.8})
	if err := bad.Apply(l); err == nil {
		t.Fatal("overfull exclusive group accepted")
	}
	if err := good.Apply(l); err != nil {
		t.Fatalf("apply after failed apply: %v", err)
	}
	if space.Len() != 1 || space.Groups() != 0 {
		t.Fatalf("failure leaked declarations: Len = %d, Groups = %d", space.Len(), space.Groups())
	}
	p, err := prob2(l, "Breakfast", "peter")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.9) > 1e-9 {
		t.Fatalf("P(Breakfast) = %g, want 0.9", p)
	}
}

// TestApplyChurnSoak is the situation-layer half of the ISSUE 2 acceptance
// soak: 10k applies must hold the event space at the live vocabulary size,
// with identical membership probabilities before and after the churn.
func TestApplyChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped in -short mode")
	}
	l := mapping.NewLoader(engine.New(), nil)
	space := l.DB().Space()
	contexts := []*Context{
		New("peter").
			Add("Breakfast", 0.9).
			AddExclusive("location", []string{"InKitchen", "InOffice", "InHall"}, []float64{0.6, 0.3, 0.1}),
		New("peter").
			Certain("Weekend").
			Add("Relaxing", 0.7).
			AddExclusive("location", []string{"InKitchen", "InOffice"}, []float64{0.2, 0.7}),
	}
	if err := contexts[0].Apply(l); err != nil {
		t.Fatal(err)
	}
	before, err := prob2(l, "InKitchen", "peter")
	if err != nil {
		t.Fatal(err)
	}
	maxLen, maxGroups := 0, 0
	const applies = 10000
	for i := 1; i <= applies; i++ {
		if err := contexts[i%2].Apply(l); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		if n := space.Len(); n > maxLen {
			maxLen = n
		}
		if g := space.Groups(); g > maxGroups {
			maxGroups = g
		}
	}
	// Largest live vocabulary: contexts[0] declares 4 events in 1 group.
	if maxLen > 4 || maxGroups > 1 {
		t.Fatalf("space grew under churn: max Len = %d (want <= 4), max Groups = %d (want <= 1)",
			maxLen, maxGroups)
	}
	// Back to the first context: scores identical to the pre-churn ranking
	// input (bit-for-bit, not just approximately).
	if err := contexts[0].Apply(l); err != nil {
		t.Fatal(err)
	}
	after, err := prob2(l, "InKitchen", "peter")
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("P(InKitchen) changed across churn: %g -> %g", before, after)
	}
}
