package situation

import (
	"math"
	"testing"
	"time"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/mapping"
)

func prob(t *testing.T, l *mapping.Loader, concept, ind string) float64 {
	t.Helper()
	ev, err := l.MembershipEvent(dl.Atom(concept), ind)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.DB().Space().Prob(ev)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestApplyCertainAndUncertain(t *testing.T) {
	l := mapping.NewLoader(engine.New(), nil)
	ctx := New("peter").Certain("Weekend").Add("Breakfast", 0.9)
	if err := ctx.Apply(l); err != nil {
		t.Fatal(err)
	}
	if p := prob(t, l, "Weekend", "peter"); p != 1 {
		t.Fatalf("P(Weekend) = %g", p)
	}
	if p := prob(t, l, "Breakfast", "peter"); math.Abs(p-0.9) > 1e-9 {
		t.Fatalf("P(Breakfast) = %g", p)
	}
}

func TestApplyReplacesPreviousContext(t *testing.T) {
	l := mapping.NewLoader(engine.New(), nil)
	if err := New("peter").Certain("Weekend").Apply(l); err != nil {
		t.Fatal(err)
	}
	// New context without Weekend: previous assertion must be gone.
	if err := New("peter").Certain("Workday").Certain("Weekend").Apply(l); err != nil {
		t.Fatal(err)
	}
	if err := New("peter").Certain("Workday").Apply(l); err != nil {
		t.Fatal(err)
	}
	if p := prob(t, l, "Weekend", "peter"); p != 0 {
		t.Fatalf("stale Weekend assertion survives: %g", p)
	}
	if p := prob(t, l, "Workday", "peter"); p != 1 {
		t.Fatalf("P(Workday) = %g", p)
	}
}

func TestExclusiveGroupSemantics(t *testing.T) {
	l := mapping.NewLoader(engine.New(), nil)
	ctx := New("peter").AddExclusive("location",
		[]string{"InKitchen", "InOffice", "InHall"},
		[]float64{0.6, 0.3, 0.1})
	if err := ctx.Apply(l); err != nil {
		t.Fatal(err)
	}
	both := dl.And(dl.Atom("InKitchen"), dl.Atom("InOffice"))
	ev, err := l.MembershipEvent(both, "peter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.DB().Space().Prob(ev)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("P(two rooms at once) = %g, want 0", p)
	}
}

func TestApplyValidation(t *testing.T) {
	l := mapping.NewLoader(engine.New(), nil)
	if err := New("u").Add("C", 1.5).Apply(l); err == nil {
		t.Fatal("invalid probability accepted")
	}
	if err := New("u").AddExclusive("g", []string{"A", "B"}, []float64{0.8, 0.8}).Apply(l); err == nil {
		t.Fatal("overfull exclusive group accepted")
	}
}

func TestClockSensor(t *testing.T) {
	cases := []struct {
		when time.Time
		want []string
		not  []string
	}{
		{time.Date(2026, 6, 13, 8, 30, 0, 0, time.UTC), // Saturday morning
			[]string{"Weekend", "Morning", "Breakfast"}, []string{"Workday", "Evening"}},
		{time.Date(2026, 6, 15, 20, 0, 0, 0, time.UTC), // Monday evening
			[]string{"Workday", "Evening"}, []string{"Weekend", "Breakfast", "Morning"}},
		{time.Date(2026, 6, 15, 2, 0, 0, 0, time.UTC), // Monday night
			[]string{"Workday", "Night"}, []string{"Morning"}},
		{time.Date(2026, 6, 15, 13, 0, 0, 0, time.UTC), // Monday afternoon
			[]string{"Afternoon"}, []string{"Breakfast"}},
	}
	for i, c := range cases {
		ctx, err := SenseAll("peter", ClockSensor{Now: c.when})
		if err != nil {
			t.Fatal(err)
		}
		names := map[string]bool{}
		for _, n := range ctx.ConceptNames() {
			names[n] = true
		}
		for _, w := range c.want {
			if !names[w] {
				t.Errorf("case %d: missing %s (got %v)", i, w, ctx.ConceptNames())
			}
		}
		for _, n := range c.not {
			if names[n] {
				t.Errorf("case %d: unexpected %s", i, n)
			}
		}
	}
}

func TestLocationSensorDistribution(t *testing.T) {
	s := LocationSensor{
		Rooms:    []string{"InKitchen", "InOffice", "InHall"},
		TrueRoom: "InKitchen",
		Accuracy: 0.8,
	}
	ctx, err := SenseAll("peter", s)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, m := range ctx.Measurements {
		total += m.Prob
		if m.Concept == "InKitchen" && math.Abs(m.Prob-0.8) > 1e-9 {
			t.Fatalf("true room prob = %g", m.Prob)
		}
		if m.Exclusive != "location" {
			t.Fatalf("measurement %v not in location group", m)
		}
	}
	if math.Abs(total-1.0) > 1e-9 {
		t.Fatalf("distribution sums to %g", total)
	}
}

func TestLocationSensorValidation(t *testing.T) {
	if _, err := SenseAll("u", LocationSensor{Rooms: []string{"A"}, TrueRoom: "B", Accuracy: 0.9}); err == nil {
		t.Fatal("unknown true room accepted")
	}
	if _, err := SenseAll("u", LocationSensor{TrueRoom: "A", Accuracy: 0.9}); err == nil {
		t.Fatal("empty room list accepted")
	}
	if _, err := SenseAll("u", LocationSensor{Rooms: []string{"A"}, TrueRoom: "A", Accuracy: 2}); err == nil {
		t.Fatal("bad accuracy accepted")
	}
}

func TestActivitySensor(t *testing.T) {
	s := ActivitySensor{
		Activities:   []string{"Cooking", "Working", "Relaxing", "Sleeping"},
		TrueActivity: "Cooking",
		Confidence:   0.7,
	}
	ctx, err := SenseAll("peter", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Measurements) != 4 {
		t.Fatalf("measurements = %v", ctx.Measurements)
	}
	for _, m := range ctx.Measurements {
		if m.Concept == "Working" && math.Abs(m.Prob-0.1) > 1e-9 {
			t.Fatalf("off-activity prob = %g, want 0.1", m.Prob)
		}
	}
	// End to end: apply and check exclusivity in the event space.
	l := mapping.NewLoader(engine.New(), nil)
	if err := ctx.Apply(l); err != nil {
		t.Fatal(err)
	}
	ev, err := l.MembershipEvent(dl.And(dl.Atom("Cooking"), dl.Atom("Sleeping")), "peter")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := l.DB().Space().Prob(ev); p != 0 {
		t.Fatalf("P(cooking while sleeping) = %g", p)
	}
}

func TestSenseAllComposes(t *testing.T) {
	ctx, err := SenseAll("peter",
		ClockSensor{Now: time.Date(2026, 6, 13, 8, 0, 0, 0, time.UTC)},
		LocationSensor{Rooms: []string{"InKitchen", "InOffice"}, TrueRoom: "InKitchen", Accuracy: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	l := mapping.NewLoader(engine.New(), nil)
	if err := ctx.Apply(l); err != nil {
		t.Fatal(err)
	}
	// Weekend ∧ InKitchen: independent blocks multiply: 1 × 0.9.
	ev, err := l.MembershipEvent(dl.And(dl.Atom("Weekend"), dl.Atom("InKitchen")), "peter")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := l.DB().Space().Prob(ev)
	if math.Abs(p-0.9) > 1e-9 {
		t.Fatalf("P = %g, want 0.9", p)
	}
}
