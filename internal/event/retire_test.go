package event

import (
	"fmt"
	"testing"
)

func TestRetireIndependent(t *testing.T) {
	s := NewSpace()
	if err := s.Declare("a", 0.3); err != nil {
		t.Fatal(err)
	}
	if p := s.MustProb(Basic("a")); !almostEqual(p, 0.3) {
		t.Fatalf("P(a) = %g", p)
	}
	if err := s.Retire("a"); err != nil {
		t.Fatal(err)
	}
	if s.Declared("a") {
		t.Fatal("a still declared after retire")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if _, err := s.Prob(Basic("a")); err == nil {
		t.Fatal("retired event still has a probability")
	}
	// The name is free again — redeclaring with a different probability
	// must take effect (no stale memo may survive the retire).
	if err := s.Declare("a", 0.6); err != nil {
		t.Fatalf("redeclare after retire: %v", err)
	}
	if p := s.MustProb(Not(Basic("a"))); !almostEqual(p, 0.4) {
		t.Fatalf("P(¬a) after redeclare = %g, want 0.4", p)
	}
}

func TestRetireIsAtomic(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.5)
	if err := s.Retire("a", "ghost"); err == nil {
		t.Fatal("retire of undeclared name accepted")
	}
	if !s.Declared("a") {
		t.Fatal("failed retire removed a declared event")
	}
	// Retiring nothing is a no-op.
	if err := s.Retire(); err != nil {
		t.Fatal(err)
	}
	// Duplicate names within one call retire once.
	if err := s.Retire("a", "a"); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestRetireGroupMemberKeepsSiblingProbabilities(t *testing.T) {
	s := NewSpace()
	if err := s.DeclareExclusive([]string{"k", "o", "h"}, []float64{0.5, 0.3, 0.1}); err != nil {
		t.Fatal(err)
	}
	before := s.MustProb(Or(Basic("k"), Basic("o")))
	if err := s.Retire("h"); err != nil {
		t.Fatal(err)
	}
	// Residual mass is computed from mentioned members only, so retiring a
	// sibling changes nothing for expressions over the survivors.
	if after := s.MustProb(Or(Basic("k"), Basic("o"))); !almostEqual(after, before) {
		t.Fatalf("P(k∨o) changed across sibling retire: %g -> %g", before, after)
	}
	if p := s.MustProb(And(Basic("k"), Basic("o"))); p != 0 {
		t.Fatalf("exclusivity lost after sibling retire: %g", p)
	}
	if _, err := s.Prob(Basic("h")); err == nil {
		t.Fatal("retired member still has a probability")
	}
	if s.Groups() != 1 {
		t.Fatalf("Groups = %d, want 1", s.Groups())
	}
}

func TestRetireCompactsGroupSlots(t *testing.T) {
	s := NewSpace()
	if err := s.DeclareExclusive([]string{"x1", "x2"}, []float64{0.4, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Retire("x1", "x2"); err != nil {
		t.Fatal(err)
	}
	if s.Groups() != 0 || s.Len() != 0 {
		t.Fatalf("Groups = %d, Len = %d after full retire", s.Groups(), s.Len())
	}
	// The freed slot is reused: the internal group table must not grow.
	for i := 0; i < 100; i++ {
		names := []string{fmt.Sprintf("y%d_a", i), fmt.Sprintf("y%d_b", i)}
		if err := s.DeclareExclusive(names, []float64{0.3, 0.3}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RetireGroup(names[0]); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.RLock()
	slots := len(s.groups)
	s.mu.RUnlock()
	if slots > 1 {
		t.Fatalf("group table grew to %d slots under churn, want 1", slots)
	}
}

func TestRetireGroup(t *testing.T) {
	s := NewSpace()
	s.Declare("solo", 0.2)
	if err := s.DeclareExclusive([]string{"g1", "g2", "g3"}, []float64{0.2, 0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	retired, err := s.RetireGroup("g2")
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 3 {
		t.Fatalf("retired = %v, want all three members", retired)
	}
	if s.Len() != 1 || s.Groups() != 0 {
		t.Fatalf("Len = %d, Groups = %d after group retire", s.Len(), s.Groups())
	}
	if _, err := s.RetireGroup("ghost"); err == nil {
		t.Fatal("RetireGroup of undeclared name accepted")
	}
	if _, err := s.RetireGroup("solo"); err == nil {
		t.Fatal("RetireGroup of an independent event accepted")
	}
	if !s.Declared("solo") {
		t.Fatal("independent event lost")
	}
}

func TestRetireInvalidatesOnlyMentioningMemos(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.5)
	s.Declare("b", 0.4)
	s.Declare("c", 0.3)
	s.Declare("d", 0.2)
	touching := Or(Basic("a"), Basic("b"))
	disjoint := And(Basic("c"), Basic("d"))
	s.MustProb(touching)
	s.MustProb(disjoint)
	s.cacheMu.Lock()
	cached := len(s.cache)
	s.cacheMu.Unlock()
	if cached != 2 {
		t.Fatalf("cache holds %d entries, want 2", cached)
	}
	if err := s.Retire("a"); err != nil {
		t.Fatal(err)
	}
	s.cacheMu.Lock()
	_, touchingCached := s.cache[touching.String()]
	_, disjointCached := s.cache[disjoint.String()]
	s.cacheMu.Unlock()
	if touchingCached {
		t.Fatal("memo mentioning the retired event survived")
	}
	if !disjointCached {
		t.Fatal("memo over disjoint events was invalidated")
	}
	if p := s.MustProb(disjoint); !almostEqual(p, 0.06) {
		t.Fatalf("P(c∧d) = %g, want 0.06", p)
	}
}

func TestDeclareExclusiveRejectsDuplicateNames(t *testing.T) {
	s := NewSpace()
	if err := s.DeclareExclusive([]string{"p", "p"}, []float64{0.3, 0.3}); err == nil {
		t.Fatal("duplicate member names accepted")
	}
	// Rejection must leave the space untouched.
	if s.Len() != 0 || s.Groups() != 0 {
		t.Fatalf("failed declare left Len = %d, Groups = %d", s.Len(), s.Groups())
	}
	if err := s.DeclareExclusive([]string{"p", "q"}, []float64{0.3, 0.3}); err != nil {
		t.Fatalf("valid group rejected after duplicate attempt: %v", err)
	}
}

func TestFreshIndependentDeclareKeepsMemos(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.5)
	s.Declare("b", 0.4)
	e := And(Basic("a"), Basic("b"))
	s.MustProb(e)
	s.Declare("fresh", 0.9)
	s.cacheMu.Lock()
	_, stillCached := s.cache[e.String()]
	s.cacheMu.Unlock()
	if !stillCached {
		t.Fatal("fresh independent declare wiped an unrelated memo")
	}
	// And the cached value is still right.
	if p := s.MustProb(e); !almostEqual(p, 0.2) {
		t.Fatalf("P(a∧b) = %g, want 0.2", p)
	}
}

// TestProbConcurrentWithRetire hammers Prob from many goroutines while one
// goroutine retires and redeclares the same names with changing
// probabilities — the compute-then-store window in Prob must never memoize
// a value from before an intervening retire (gen guard), and afterwards the
// cache must agree with the final declarations.
func TestProbConcurrentWithRetire(t *testing.T) {
	s := NewSpace()
	s.Declare("stable", 0.5)
	s.Declare("hot", 0.1)
	e := And(Basic("stable"), Basic("hot"))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			if err := s.Retire("hot"); err != nil {
				t.Error(err)
				return
			}
			if err := s.Declare("hot", float64(i%9+1)/10); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 16; i++ {
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				// Both outcomes are legal mid-churn: a probability, or a
				// "not declared" error while hot is momentarily retired.
				_, _ = s.Prob(e)
			}
		}()
	}
	<-done
	want, err := s.BasicProb("hot")
	if err != nil {
		t.Fatal(err)
	}
	// The memo must now reflect the final declaration, not any stale value
	// cached across a retire.
	for i := 0; i < 3; i++ {
		p, err := s.Prob(e)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(p, 0.5*want) {
			t.Fatalf("P(stable∧hot) = %g, want %g (stale memo survived a retire)", p, 0.5*want)
		}
	}
}

// TestSpaceChurnSoak is the substrate half of the ISSUE 2 acceptance: 10k
// declare/rank/retire epochs must leave the space no larger than one
// epoch's vocabulary, with probabilities identical every round.
func TestSpaceChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped in -short mode")
	}
	s := NewSpace()
	var prev []string
	const epochs = 10000
	for e := 0; e < epochs; e++ {
		ind := fmt.Sprintf("ctx_%d_ind", e)
		ga := fmt.Sprintf("ctx_%d_a", e)
		gb := fmt.Sprintf("ctx_%d_b", e)
		gc := fmt.Sprintf("ctx_%d_c", e)
		if err := s.Declare(ind, 0.9); err != nil {
			t.Fatal(err)
		}
		if err := s.DeclareExclusive([]string{ga, gb, gc}, []float64{0.6, 0.3, 0.1}); err != nil {
			t.Fatal(err)
		}
		p := s.MustProb(And(Basic(ind), Or(Basic(ga), Basic(gb))))
		if !almostEqual(p, 0.9*0.9) {
			t.Fatalf("epoch %d: P = %g, want 0.81", e, p)
		}
		if err := s.Retire(prev...); err != nil {
			t.Fatal(err)
		}
		prev = []string{ind, ga, gb, gc}
	}
	// Live vocabulary: exactly the final epoch's four events (the previous
	// epoch was retired inside the loop).
	if s.Len() != len(prev) {
		t.Fatalf("space grew: Len = %d after %d epochs, want %d", s.Len(), epochs, len(prev))
	}
	if s.Groups() != 1 {
		t.Fatalf("groups grew: %d live groups, want 1", s.Groups())
	}
	// Two slots max: the current epoch's group plus the not-yet-retired
	// previous one coexist briefly each round, then the slot is reused.
	s.mu.RLock()
	slots := len(s.groups)
	s.mu.RUnlock()
	if slots > 2 {
		t.Fatalf("group slot table grew to %d entries under churn", slots)
	}
	// Memos of retired expressions must be dropped too.
	s.cacheMu.Lock()
	memos := len(s.cache)
	s.cacheMu.Unlock()
	if memos > 4 {
		t.Fatalf("memo cache grew to %d entries", memos)
	}
}
