// Package event implements probabilistic event expressions, the uncertainty
// substrate of the paper (van Bunningen et al., ICDE 2007, §3.3 and §5, after
// Fuhr & Rölleke's probabilistic relational algebra).
//
// A basic event is an atomic boolean random variable with a known
// probability, optionally belonging to an exclusive group (at most one event
// of a group is true — e.g. "a person can only be at a single place at one
// moment"). Event expressions combine basic events with NOT/AND/OR. A Space
// owns the basic-event declarations and computes *exact* probabilities of
// expressions via Shannon-style enumeration over the exclusive groups that an
// expression mentions, so shared lineage is never double-counted.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the node types of an event expression tree.
type Kind uint8

// Expression node kinds.
const (
	KindTrue Kind = iota
	KindFalse
	KindBasic
	KindNot
	KindAnd
	KindOr
)

// Expr is an immutable event expression. The zero value is not valid; use the
// constructors. Expressions are shared freely between goroutines.
type Expr struct {
	kind Kind
	name string  // KindBasic only
	args []*Expr // KindNot (1), KindAnd/KindOr (>=2)
}

var (
	trueExpr  = &Expr{kind: KindTrue}
	falseExpr = &Expr{kind: KindFalse}
)

// True returns the certain event (probability 1).
func True() *Expr { return trueExpr }

// False returns the impossible event (probability 0).
func False() *Expr { return falseExpr }

// Basic returns a reference to the basic event with the given name. The name
// must be declared in any Space used to evaluate the expression.
func Basic(name string) *Expr { return &Expr{kind: KindBasic, name: name} }

// Not returns the complement of e, applying involution and constant folding.
func Not(e *Expr) *Expr {
	switch e.kind {
	case KindTrue:
		return falseExpr
	case KindFalse:
		return trueExpr
	case KindNot:
		return e.args[0]
	}
	return &Expr{kind: KindNot, args: []*Expr{e}}
}

// And returns the conjunction of the given expressions. Constants are folded,
// nested conjunctions are flattened, and duplicates are removed. And() with
// no arguments is True.
func And(es ...*Expr) *Expr { return nary(KindAnd, es) }

// Or returns the disjunction of the given expressions. Constants are folded,
// nested disjunctions are flattened, and duplicates are removed. Or() with no
// arguments is False.
func Or(es ...*Expr) *Expr { return nary(KindOr, es) }

func nary(k Kind, es []*Expr) *Expr {
	identity, absorber := trueExpr, falseExpr
	if k == KindOr {
		identity, absorber = falseExpr, trueExpr
	}
	flat := make([]*Expr, 0, len(es))
	seen := make(map[string]bool, len(es))
	for _, e := range es {
		if e == nil {
			continue
		}
		if e.kind == absorber.kind {
			return absorber
		}
		if e.kind == identity.kind {
			continue
		}
		parts := []*Expr{e}
		if e.kind == k {
			parts = e.args
		}
		for _, p := range parts {
			key := p.String()
			if !seen[key] {
				seen[key] = true
				flat = append(flat, p)
			}
		}
	}
	switch len(flat) {
	case 0:
		return identity
	case 1:
		return flat[0]
	}
	return &Expr{kind: k, args: flat}
}

// Kind reports the node kind of the expression root.
func (e *Expr) Kind() Kind { return e.kind }

// BasicName returns the basic-event name for a KindBasic node and "" for all
// other kinds.
func (e *Expr) BasicName() string {
	if e.kind == KindBasic {
		return e.name
	}
	return ""
}

// Args returns the child expressions (nil for leaves). The returned slice
// must not be modified.
func (e *Expr) Args() []*Expr { return e.args }

// String renders the expression in a canonical parenthesized form, suitable
// both for display (lineage, §5) and as a map key.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Expr) format(b *strings.Builder) {
	switch e.kind {
	case KindTrue:
		b.WriteString("⊤")
	case KindFalse:
		b.WriteString("⊥")
	case KindBasic:
		b.WriteString(e.name)
	case KindNot:
		b.WriteString("¬")
		child := e.args[0]
		if child.kind == KindAnd || child.kind == KindOr {
			b.WriteByte('(')
			child.format(b)
			b.WriteByte(')')
		} else {
			child.format(b)
		}
	case KindAnd, KindOr:
		sep := " ∧ "
		if e.kind == KindOr {
			sep = " ∨ "
		}
		for i, a := range e.args {
			if i > 0 {
				b.WriteString(sep)
			}
			if a.kind == KindAnd || a.kind == KindOr {
				b.WriteByte('(')
				a.format(b)
				b.WriteByte(')')
			} else {
				a.format(b)
			}
		}
	default:
		fmt.Fprintf(b, "<invalid kind %d>", e.kind)
	}
}

// Equal reports structural equality of two expressions.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.kind != b.kind || a.name != b.name || len(a.args) != len(b.args) {
		return false
	}
	for i := range a.args {
		if !Equal(a.args[i], b.args[i]) {
			return false
		}
	}
	return true
}

// Basics returns the sorted set of basic-event names mentioned by e.
func (e *Expr) Basics() []string {
	set := make(map[string]bool)
	e.collectBasics(set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (e *Expr) collectBasics(set map[string]bool) {
	if e.kind == KindBasic {
		set[e.name] = true
		return
	}
	for _, a := range e.args {
		a.collectBasics(set)
	}
}

// evaluate computes the truth value of e under a total assignment of the
// basic events it mentions.
func (e *Expr) evaluate(assign map[string]bool) bool {
	switch e.kind {
	case KindTrue:
		return true
	case KindFalse:
		return false
	case KindBasic:
		return assign[e.name]
	case KindNot:
		return !e.args[0].evaluate(assign)
	case KindAnd:
		for _, a := range e.args {
			if !a.evaluate(assign) {
				return false
			}
		}
		return true
	case KindOr:
		for _, a := range e.args {
			if a.evaluate(assign) {
				return true
			}
		}
		return false
	}
	return false
}
