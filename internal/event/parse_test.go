package event

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	cases := map[string]*Expr{
		"a":            Basic("a"),
		"⊤":            True(),
		"⊥":            False(),
		"TRUE":         True(),
		"false":        False(),
		"¬a":           Not(Basic("a")),
		"NOT a":        Not(Basic("a")),
		"!a":           Not(Basic("a")),
		"a ∧ b":        And(Basic("a"), Basic("b")),
		"a AND b":      And(Basic("a"), Basic("b")),
		"a & b":        And(Basic("a"), Basic("b")),
		"a ∨ b":        Or(Basic("a"), Basic("b")),
		"a | b OR c":   Or(Basic("a"), Basic("b"), Basic("c")),
		"(a ∨ b) ∧ c":  And(Or(Basic("a"), Basic("b")), Basic("c")),
		"¬(a ∧ b)":     Not(And(Basic("a"), Basic("b"))),
		"ctx_1_0_Week": Basic("ctx_1_0_Week"),
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if !Equal(got, want) {
			t.Fatalf("Parse(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "a ∧", "(a", "a b", "∧ a", "a ∨ ∨ b", ")", "NOT"}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestParseKeywordPrefixNames(t *testing.T) {
	// Names beginning with keyword letters must not be misread.
	e, err := Parse("ANDy AND ORin AND NOTa")
	if err != nil {
		t.Fatal(err)
	}
	want := And(Basic("ANDy"), Basic("ORin"), Basic("NOTa"))
	if !Equal(e, want) {
		t.Fatalf("got %s, want %s", e, want)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, []string{"a", "b", "c", "d"}, 5)
		back, err := Parse(e.String())
		return err == nil && Equal(e, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEval(t *testing.T) {
	e := MustParse("(a ∧ ¬b) ∨ c")
	cases := []struct {
		a, b, c, want bool
	}{
		{true, false, false, true},
		{true, true, false, false},
		{false, false, true, true},
		{false, false, false, false},
	}
	for i, c := range cases {
		got := e.Eval(map[string]bool{"a": c.a, "b": c.b, "c": c.c})
		if got != c.want {
			t.Fatalf("case %d: got %v", i, got)
		}
	}
}

func TestSamplerConvergesToExactProb(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.3)
	s.Declare("b", 0.6)
	s.DeclareExclusive([]string{"g1", "g2", "g3"}, []float64{0.2, 0.5, 0.1})
	e := Or(And(Basic("a"), Basic("g2")), And(Basic("b"), Not(Basic("g1"))))
	exact := s.MustProb(e)

	sampler, err := s.NewSampler(e)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	assign := make(map[string]bool, 8)
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		sampler.Sample(rng, assign)
		if e.Eval(assign) {
			hits++
		}
	}
	est := float64(hits) / n
	if math.Abs(est-exact) > 0.01 {
		t.Fatalf("sampled %g, exact %g", est, exact)
	}
}

func TestSamplerExclusiveInvariant(t *testing.T) {
	s := NewSpace()
	s.DeclareExclusive([]string{"x", "y"}, []float64{0.5, 0.5})
	sampler, err := s.NewSampler(Or(Basic("x"), Basic("y")))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	assign := make(map[string]bool, 2)
	for i := 0; i < 1000; i++ {
		sampler.Sample(rng, assign)
		if assign["x"] && assign["y"] {
			t.Fatal("exclusive group members both true")
		}
	}
}

func TestSamplerUndeclaredEvent(t *testing.T) {
	s := NewSpace()
	if _, err := s.NewSampler(Basic("ghost")); err == nil {
		t.Fatal("undeclared event accepted")
	}
}
