package event

import (
	"fmt"
	"unicode"
)

// Parse parses the textual form produced by Expr.String: basic-event names,
// the constants ⊤/⊥ (or TRUE/FALSE), prefix ¬ (or NOT / !), infix ∧ (or
// AND / &) and ∨ (or OR / |), with parentheses. Parse(e.String()) is
// structurally equal to e for every expression e, which makes the format
// suitable for persisting EVENT columns.
func Parse(input string) (*Expr, error) {
	p := &eparser{src: []rune(input), input: input}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("event: trailing input %q in %q", string(p.src[p.pos:]), input)
	}
	return e, nil
}

// MustParse is Parse but panics on error.
func MustParse(input string) *Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type eparser struct {
	src   []rune
	pos   int
	input string
}

func (p *eparser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *eparser) peek() rune {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// word consumes a case-insensitive keyword if present at the cursor,
// requiring a non-name boundary after it.
func (p *eparser) word(kw string) bool {
	save := p.pos
	for _, r := range kw {
		if p.pos >= len(p.src) || unicode.ToUpper(p.src[p.pos]) != r {
			p.pos = save
			return false
		}
		p.pos++
	}
	if p.pos < len(p.src) && isEventNameRune(p.src[p.pos]) {
		p.pos = save
		return false
	}
	return true
}

func isEventNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == ':'
}

func (p *eparser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []*Expr{left}
	for {
		p.skipSpace()
		switch {
		case p.peek() == '∨', p.peek() == '|':
			p.pos++
		case p.word("OR"):
		default:
			return Or(args...), nil
		}
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
}

func (p *eparser) parseAnd() (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	args := []*Expr{left}
	for {
		p.skipSpace()
		switch {
		case p.peek() == '∧', p.peek() == '&':
			p.pos++
		case p.word("AND"):
		default:
			return And(args...), nil
		}
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
}

func (p *eparser) parseUnary() (*Expr, error) {
	p.skipSpace()
	switch {
	case p.peek() == '¬', p.peek() == '!':
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(inner), nil
	case p.word("NOT"):
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(inner), nil
	case p.peek() == '(':
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("event: missing ')' in %q", p.input)
		}
		p.pos++
		return inner, nil
	case p.peek() == '⊤':
		p.pos++
		return True(), nil
	case p.peek() == '⊥':
		p.pos++
		return False(), nil
	case p.word("TRUE"):
		return True(), nil
	case p.word("FALSE"):
		return False(), nil
	}
	start := p.pos
	for p.pos < len(p.src) && isEventNameRune(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("event: unexpected %q in %q", string(p.peek()), p.input)
	}
	return Basic(string(p.src[start:p.pos])), nil
}

// Eval evaluates the expression under a total assignment of its basic
// events (missing names read as false).
func (e *Expr) Eval(assign map[string]bool) bool { return e.evaluate(assign) }

// Sampler draws random worlds of the correlated blocks mentioned by a set
// of expressions, for Monte Carlo probability estimation. Build once per
// expression set; Sample is cheap and allocation-light.
type Sampler struct {
	factors []factor
}

// NewSampler prepares a sampler for the union of basic events mentioned by
// the given expressions.
func (s *Space) NewSampler(exprs ...*Expr) (*Sampler, error) {
	names := make(map[string]bool)
	for _, e := range exprs {
		for _, n := range e.Basics() {
			names[n] = true
		}
	}
	carrier := make([]*Expr, 0, len(names))
	for n := range names {
		carrier = append(carrier, Basic(n))
	}
	factors, err := s.factorsOf(Or(carrier...))
	if err != nil {
		return nil, err
	}
	return &Sampler{factors: factors}, nil
}

// Sample fills assign with one random world: independent events flip their
// own coins; exclusive-group members are drawn from the group distribution
// (at most one true).
func (sa *Sampler) Sample(rng rand64, assign map[string]bool) {
	for _, f := range sa.factors {
		if !f.excl {
			assign[f.names[0]] = rng.Float64() < f.probs[0]
			continue
		}
		u := rng.Float64()
		chosen := -1
		acc := 0.0
		for i, p := range f.probs {
			acc += p
			if u < acc {
				chosen = i
				break
			}
		}
		for i, n := range f.names {
			assign[n] = i == chosen
		}
	}
}

// rand64 is the minimal randomness interface Sample needs; *math/rand.Rand
// satisfies it.
type rand64 = interface{ Float64() float64 }
