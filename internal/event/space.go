package event

import (
	"fmt"
	"sort"
	"sync"
)

// basicInfo records the declaration of a basic event.
type basicInfo struct {
	prob  float64
	group int // -1 when the event is independent of all others
}

// Space owns basic-event declarations and computes exact probabilities of
// event expressions over them. All methods are safe for concurrent use.
//
// Independence model: basic events in different groups (or ungrouped) are
// mutually independent; basic events within one exclusive group are mutually
// exclusive (at most one is true).
//
// # Retirement contract
//
// Declarations are not permanent: Retire and RetireGroup remove basic
// events again, freeing their declaration, compacting their exclusive-group
// slot for reuse and dropping exactly the memoized probabilities that
// mention a retired name. The caller owns the obligation that no stored
// event expression still references a retired event — Prob of such an
// expression fails with "not declared", the same as for a name that never
// existed. Retiring a member of an exclusive group does not change the
// probability of any expression over the remaining members (residual mass
// is computed from mentioned members only), so churning context loaders can
// retire a dead epoch's events without perturbing live rankings.
type Space struct {
	mu     sync.RWMutex
	basics map[string]basicInfo
	groups [][]string // group id -> member names; nil = retired slot
	free   []int      // retired group slots available for reuse

	cacheMu sync.Mutex
	cache   map[string]cacheEntry
	// gen counts invalidations (Retire, RetireGroup, DeclareExclusive).
	// Prob snapshots it before enumerating and stores its result only if no
	// invalidation intervened: without the guard, a probability computed
	// just before a Retire could be memoized just after it, surviving the
	// targeted invalidation and serving a stale value forever (e.g. across
	// a retire/redeclare cycle that changed the probability). Guarded by
	// cacheMu.
	gen uint64
	// changes records, per invalidation generation, the correlated-block
	// keys (in Blocks' key space) whose probability semantics that
	// invalidation may have altered — the footprint diff that incremental
	// plan maintenance intersects against a plan's cached footprints.
	// Ascending by gen; bounded by maxTrackedChanges, with changeFloor the
	// highest generation whose changes were trimmed away (callers asking
	// about older generations must assume everything changed). Guarded by
	// cacheMu.
	changes     []genChange
	changeFloor uint64
}

// genChange is one invalidation's changed-block record.
type genChange struct {
	gen  uint64
	keys []string
}

// maxTrackedChanges bounds the change history. A context apply costs a
// handful of generations (one retire plus one declare per exclusive
// group), so the bound covers hundreds of applies between a plan's compile
// and its refresh; older plans just lose the incremental fast path.
const maxTrackedChanges = 4096

// cacheEntry memoizes one expression's probability together with the basic
// events it mentions, so Retire can invalidate exactly the entries that a
// retired name could affect.
type cacheEntry struct {
	p      float64
	basics []string
}

// NewSpace returns an empty event space.
func NewSpace() *Space {
	return &Space{
		basics: make(map[string]basicInfo),
		cache:  make(map[string]cacheEntry),
	}
}

// Declare registers an independent basic event with probability p.
// Redeclaring an existing name with a different probability is an error;
// redeclaring with the same probability is a no-op (so loaders can be
// idempotent).
func (s *Space) Declare(name string, p float64) error {
	// Positive form so NaN is rejected too.
	if !(p >= 0 && p <= 1) {
		return fmt.Errorf("event: probability %g of %q out of [0,1]", p, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.basics[name]; ok {
		if old.prob == p && old.group == -1 {
			return nil
		}
		return fmt.Errorf("event: basic event %q already declared", name)
	}
	s.basics[name] = basicInfo{prob: p, group: -1}
	// No memo invalidation: a fresh independent basic cannot change any
	// existing expression's probability — expressions mentioning it errored
	// before (errors are never cached), and expressions not mentioning it
	// are unaffected by an independent addition. (Retire invalidated any
	// older entries when this name was last retired, so a retire/redeclare
	// cycle with a different probability is covered too.)
	return nil
}

// DeclareExclusive registers a group of mutually exclusive basic events. The
// probabilities must sum to at most 1; the residual mass is the probability
// that none of them is true.
func (s *Space) DeclareExclusive(names []string, probs []float64) error {
	if len(names) != len(probs) {
		return fmt.Errorf("event: %d names but %d probabilities", len(names), len(probs))
	}
	if len(names) == 0 {
		return fmt.Errorf("event: empty exclusive group")
	}
	sum := 0.0
	dup := make(map[string]bool, len(names))
	for i, p := range probs {
		if !(p >= 0 && p <= 1) {
			return fmt.Errorf("event: probability %g of %q out of [0,1]", p, names[i])
		}
		// A name repeated within one call would be stored once but counted
		// once per occurrence by enumerate, double-counting its mass and
		// over-subtracting the residual.
		if dup[names[i]] {
			return fmt.Errorf("event: duplicate name %q in exclusive group", names[i])
		}
		dup[names[i]] = true
		sum += p
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("event: exclusive group probabilities sum to %g > 1", sum)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range names {
		if _, ok := s.basics[n]; ok {
			return fmt.Errorf("event: basic event %q already declared", n)
		}
	}
	members := make([]string, len(names))
	copy(members, names)
	var gid int
	if n := len(s.free); n > 0 {
		// Reuse a retired group slot so churning loaders do not grow the
		// group table without bound.
		gid = s.free[n-1]
		s.free = s.free[:n-1]
		s.groups[gid] = members
	} else {
		gid = len(s.groups)
		s.groups = append(s.groups, members)
	}
	for i, n := range names {
		s.basics[n] = basicInfo{prob: probs[i], group: gid}
	}
	// The group key may be a reused slot id: recording it as changed is what
	// tells footprint-diffing callers that "g:<gid>" no longer means the
	// group they saw at compile time.
	s.invalidate([]string{groupKey(gid)})
	return nil
}

// Retire removes previously declared basic events (independent or exclusive
// group members). The call is atomic: if any name is not declared, nothing
// is retired. A group whose last member is retired has its slot freed for
// reuse by a later DeclareExclusive. Only memoized probabilities that
// mention a retired name are invalidated; see the retirement contract on
// Space for the caller's obligations.
func (s *Space) Retire(names ...string) error {
	if len(names) == 0 {
		return nil
	}
	s.mu.Lock()
	for _, n := range names {
		if _, ok := s.basics[n]; !ok {
			s.mu.Unlock()
			return fmt.Errorf("event: cannot retire %q: not declared", n)
		}
	}
	keys := make([]string, 0, len(names))
	seenKeys := make(map[string]bool, len(names))
	for _, n := range names {
		info, ok := s.basics[n]
		if !ok {
			continue // duplicate name within this call
		}
		if k := blockKey(n, info.group); !seenKeys[k] {
			seenKeys[k] = true
			keys = append(keys, k)
		}
		delete(s.basics, n)
		if info.group >= 0 {
			s.removeGroupMemberLocked(info.group, n)
		}
	}
	s.mu.Unlock()
	s.invalidateMentioning(names, keys)
	return nil
}

// RetireGroup retires every member of the exclusive group containing the
// named event and frees the group's slot, returning the retired names. It
// is an error if the name is not declared or is an independent event.
func (s *Space) RetireGroup(member string) ([]string, error) {
	s.mu.Lock()
	info, ok := s.basics[member]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("event: cannot retire group of %q: not declared", member)
	}
	if info.group < 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("event: %q is independent, not an exclusive-group member", member)
	}
	retired := s.groups[info.group]
	for _, n := range retired {
		delete(s.basics, n)
	}
	s.groups[info.group] = nil
	s.free = append(s.free, info.group)
	s.mu.Unlock()
	s.invalidateMentioning(retired, []string{groupKey(info.group)})
	return retired, nil
}

// removeGroupMemberLocked drops one member from its group, freeing the slot
// when the group empties. Caller holds s.mu.
func (s *Space) removeGroupMemberLocked(gid int, name string) {
	members := s.groups[gid]
	for i, m := range members {
		if m == name {
			members = append(members[:i], members[i+1:]...)
			break
		}
	}
	if len(members) == 0 {
		s.groups[gid] = nil
		s.free = append(s.free, gid)
		return
	}
	s.groups[gid] = members
}

// Declared reports whether name is a declared basic event.
func (s *Space) Declared(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.basics[name]
	return ok
}

// BasicProb returns the declared probability of a basic event.
func (s *Space) BasicProb(name string) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.basics[name]
	if !ok {
		return 0, fmt.Errorf("event: basic event %q not declared", name)
	}
	return info.prob, nil
}

// Decl describes one declared basic event for snapshotting: Group is -1
// for independent events, otherwise the index of its exclusive group.
type Decl struct {
	Name  string
	Prob  float64
	Group int
}

// Decls returns every declaration, grouped events first (ordered by group,
// then by their position in the group), then independent events sorted by
// name — an order that Restore-style loops can replay directly. Retired
// group slots are skipped; surviving groups keep their original ids, which
// may therefore have gaps.
func (s *Space) Decls() []Decl {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Decl
	for gid, members := range s.groups {
		for _, n := range members {
			out = append(out, Decl{Name: n, Prob: s.basics[n].prob, Group: gid})
		}
	}
	var singles []Decl
	for n, info := range s.basics {
		if info.group == -1 {
			singles = append(singles, Decl{Name: n, Prob: info.prob, Group: -1})
		}
	}
	sort.Slice(singles, func(i, j int) bool { return singles[i].Name < singles[j].Name })
	return append(out, singles...)
}

// Len returns the number of declared basic events.
func (s *Space) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.basics)
}

// Groups returns the number of live (non-retired) exclusive groups.
func (s *Space) Groups() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, members := range s.groups {
		if len(members) > 0 {
			n++
		}
	}
	return n
}

func (s *Space) invalidate(changedKeys []string) {
	s.cacheMu.Lock()
	s.cache = make(map[string]cacheEntry)
	s.gen++
	s.recordChangeLocked(changedKeys)
	s.cacheMu.Unlock()
}

// invalidateMentioning drops exactly the memo entries whose expression
// mentions one of the given basic names — entries over disjoint names keep
// their cached probability, which retirement cannot have changed.
// changedKeys are the names' block keys, recorded for ChangedBlocksSince.
func (s *Space) invalidateMentioning(names, changedKeys []string) {
	dead := make(map[string]bool, len(names))
	for _, n := range names {
		dead[n] = true
	}
	s.cacheMu.Lock()
	for key, ent := range s.cache {
		for _, b := range ent.basics {
			if dead[b] {
				delete(s.cache, key)
				break
			}
		}
	}
	s.gen++
	s.recordChangeLocked(changedKeys)
	s.cacheMu.Unlock()
}

// recordChangeLocked appends one generation's changed-block record,
// trimming the oldest half past maxTrackedChanges. Caller holds cacheMu,
// after incrementing gen.
func (s *Space) recordChangeLocked(keys []string) {
	s.changes = append(s.changes, genChange{gen: s.gen, keys: keys})
	if len(s.changes) > maxTrackedChanges {
		drop := len(s.changes) / 2
		s.changeFloor = s.changes[drop-1].gen
		s.changes = append([]genChange(nil), s.changes[drop:]...)
	}
}

// ChangedBlocksSince returns every correlated-block key (in Blocks' key
// space) whose probability semantics may have changed by an invalidation
// after generation gen, together with the generation the answer is valid
// as of. ok is false when the change history no longer reaches back to
// gen — the caller must then assume every block changed. A plan compiled
// at generation g whose cached footprint is disjoint from the returned
// set is guaranteed that none of its footprint blocks were retired,
// regrouped or re-declared in (g, asOf]: its document-side probabilities
// are still exact.
func (s *Space) ChangedBlocksSince(gen uint64) (keys map[string]bool, asOf uint64, ok bool) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if gen < s.changeFloor {
		return nil, s.gen, false
	}
	keys = make(map[string]bool)
	for i := len(s.changes) - 1; i >= 0; i-- {
		c := s.changes[i]
		if c.gen <= gen {
			break
		}
		for _, k := range c.keys {
			keys[k] = true
		}
	}
	return keys, s.gen, true
}

// Generation returns the space's invalidation counter. It advances on
// every mutation that could change (or invalidate) the probability of an
// already-held expression — Retire, RetireGroup, DeclareExclusive — and
// stays put on plain Declare, which provably cannot affect existing
// expressions (see the comment in Declare). Callers that precompute
// probabilities (the rank plans' document-distribution cache) snapshot the
// generation and treat any advance as "recompute": a recompute over
// retired events then fails with "not declared" exactly like a fresh Prob,
// so the retirement contract is preserved rather than masked by a cache.
func (s *Space) Generation() uint64 {
	s.cacheMu.Lock()
	gen := s.gen
	s.cacheMu.Unlock()
	return gen
}

// Prob computes the exact probability of e. It enumerates joint states of
// the exclusive groups (and singleton events) that e mentions, so the cost is
// exponential only in the number of *distinct correlated groups mentioned by
// e*, never in the size of the space. Results are memoized per expression.
func (s *Space) Prob(e *Expr) (float64, error) {
	switch e.kind {
	case KindTrue:
		return 1, nil
	case KindFalse:
		return 0, nil
	case KindBasic:
		return s.BasicProb(e.name)
	}
	key := e.String()
	s.cacheMu.Lock()
	if ent, ok := s.cache[key]; ok {
		s.cacheMu.Unlock()
		return ent.p, nil
	}
	gen := s.gen
	s.cacheMu.Unlock()

	p, err := s.enumerate(e)
	if err != nil {
		return 0, err
	}
	s.cacheMu.Lock()
	if s.gen == gen {
		s.cache[key] = cacheEntry{p: p, basics: e.Basics()}
	}
	s.cacheMu.Unlock()
	return p, nil
}

// MustProb is Prob but panics on error; for expressions whose basic events
// are known to be declared (e.g. internal tests and benchmarks).
func (s *Space) MustProb(e *Expr) float64 {
	p, err := s.Prob(e)
	if err != nil {
		panic(err)
	}
	return p
}

// factor is one independent block of basic events mentioned by an
// expression: either a singleton independent event or the mentioned members
// of one exclusive group.
type factor struct {
	names []string
	probs []float64
	excl  bool
}

func (s *Space) factorsOf(e *Expr) ([]factor, error) {
	names := e.Basics()
	s.mu.RLock()
	defer s.mu.RUnlock()
	byGroup := make(map[int]*factor)
	var singles []factor
	for _, n := range names {
		info, ok := s.basics[n]
		if !ok {
			return nil, fmt.Errorf("event: basic event %q not declared", n)
		}
		if info.group == -1 {
			singles = append(singles, factor{names: []string{n}, probs: []float64{info.prob}})
			continue
		}
		f := byGroup[info.group]
		if f == nil {
			f = &factor{excl: true}
			byGroup[info.group] = f
		}
		f.names = append(f.names, n)
		f.probs = append(f.probs, info.prob)
	}
	out := singles
	gids := make([]int, 0, len(byGroup))
	for g := range byGroup {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	for _, g := range gids {
		out = append(out, *byGroup[g])
	}
	return out, nil
}

// enumerate sums the probability of every joint state of the mentioned
// factors under which e evaluates to true.
func (s *Space) enumerate(e *Expr) (float64, error) {
	factors, err := s.factorsOf(e)
	if err != nil {
		return 0, err
	}
	assign := make(map[string]bool, 8)
	var rec func(i int, acc float64) float64
	rec = func(i int, acc float64) float64 {
		if acc == 0 {
			return 0
		}
		if i == len(factors) {
			if e.evaluate(assign) {
				return acc
			}
			return 0
		}
		f := factors[i]
		total := 0.0
		if f.excl {
			// One mentioned member true, or none of the mentioned members
			// true (residual includes unmentioned members and "nothing").
			residual := 1.0
			for j, n := range f.names {
				residual -= f.probs[j]
				for _, m := range f.names {
					assign[m] = m == n
				}
				total += rec(i+1, acc*f.probs[j])
			}
			if residual < 0 {
				residual = 0
			}
			for _, m := range f.names {
				assign[m] = false
			}
			total += rec(i+1, acc*residual)
		} else {
			n := f.names[0]
			assign[n] = true
			total += rec(i+1, acc*f.probs[0])
			assign[n] = false
			total += rec(i+1, acc*(1-f.probs[0]))
		}
		return total
	}
	return rec(0, 1), nil
}

// blockKey is the canonical correlated-block key of one declared basic:
// its own name for independent events, the shared group key otherwise.
func blockKey(name string, group int) string {
	if group == -1 {
		return "b:" + name
	}
	return groupKey(group)
}

// groupKey is the block key shared by every member of one exclusive group.
func groupKey(gid int) string { return fmt.Sprintf("g:%d", gid) }

// Blocks adds the canonical correlated-block keys of every basic event
// mentioned by e into dst: an independent basic contributes its own name,
// an exclusive-group member contributes its group's key (shared by all
// members). Two expressions are independent exactly when their block-key
// sets are disjoint, so callers can partition many expressions into
// correlation clusters with one pass per expression instead of O(n²)
// Independent probes. It is an error if e mentions an undeclared basic
// event (e.g. one that was retired).
func (s *Space) Blocks(e *Expr, dst map[string]bool) error {
	names := e.Basics()
	if len(names) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, n := range names {
		info, ok := s.basics[n]
		if !ok {
			return fmt.Errorf("event: basic event %q not declared", n)
		}
		dst[blockKey(n, info.group)] = true
	}
	return nil
}

// Independent reports whether two expressions mention disjoint sets of
// correlated blocks, i.e. whether P(a ∧ b) = P(a)·P(b) is guaranteed by the
// independence structure of the space.
func (s *Space) Independent(a, b *Expr) (bool, error) {
	fa, err := s.factorsOf(a)
	if err != nil {
		return false, err
	}
	fb, err := s.factorsOf(b)
	if err != nil {
		return false, err
	}
	seen := make(map[string]bool)
	s.mu.RLock()
	defer s.mu.RUnlock()
	mark := func(fs []factor, record bool) bool {
		for _, f := range fs {
			for _, n := range f.names {
				key := n
				if info := s.basics[n]; info.group != -1 {
					key = fmt.Sprintf("group:%d", info.group)
				}
				if record {
					seen[key] = true
				} else if seen[key] {
					return false
				}
			}
		}
		return true
	}
	mark(fa, true)
	return mark(fb, false), nil
}
