package event

import (
	"fmt"
	"sort"
	"sync"
)

// basicInfo records the declaration of a basic event.
type basicInfo struct {
	prob  float64
	group int // -1 when the event is independent of all others
}

// Space owns basic-event declarations and computes exact probabilities of
// event expressions over them. All methods are safe for concurrent use.
//
// Independence model: basic events in different groups (or ungrouped) are
// mutually independent; basic events within one exclusive group are mutually
// exclusive (at most one is true).
type Space struct {
	mu     sync.RWMutex
	basics map[string]basicInfo
	groups [][]string // group id -> member names

	cacheMu sync.Mutex
	cache   map[string]float64
}

// NewSpace returns an empty event space.
func NewSpace() *Space {
	return &Space{
		basics: make(map[string]basicInfo),
		cache:  make(map[string]float64),
	}
}

// Declare registers an independent basic event with probability p.
// Redeclaring an existing name with a different probability is an error;
// redeclaring with the same probability is a no-op (so loaders can be
// idempotent).
func (s *Space) Declare(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("event: probability %g of %q out of [0,1]", p, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.basics[name]; ok {
		if old.prob == p && old.group == -1 {
			return nil
		}
		return fmt.Errorf("event: basic event %q already declared", name)
	}
	s.basics[name] = basicInfo{prob: p, group: -1}
	s.invalidate()
	return nil
}

// DeclareExclusive registers a group of mutually exclusive basic events. The
// probabilities must sum to at most 1; the residual mass is the probability
// that none of them is true.
func (s *Space) DeclareExclusive(names []string, probs []float64) error {
	if len(names) != len(probs) {
		return fmt.Errorf("event: %d names but %d probabilities", len(names), len(probs))
	}
	if len(names) == 0 {
		return fmt.Errorf("event: empty exclusive group")
	}
	sum := 0.0
	for i, p := range probs {
		if p < 0 || p > 1 {
			return fmt.Errorf("event: probability %g of %q out of [0,1]", p, names[i])
		}
		sum += p
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("event: exclusive group probabilities sum to %g > 1", sum)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range names {
		if _, ok := s.basics[n]; ok {
			return fmt.Errorf("event: basic event %q already declared", n)
		}
	}
	gid := len(s.groups)
	members := make([]string, len(names))
	copy(members, names)
	s.groups = append(s.groups, members)
	for i, n := range names {
		s.basics[n] = basicInfo{prob: probs[i], group: gid}
	}
	s.invalidate()
	return nil
}

// Declared reports whether name is a declared basic event.
func (s *Space) Declared(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.basics[name]
	return ok
}

// BasicProb returns the declared probability of a basic event.
func (s *Space) BasicProb(name string) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.basics[name]
	if !ok {
		return 0, fmt.Errorf("event: basic event %q not declared", name)
	}
	return info.prob, nil
}

// Decl describes one declared basic event for snapshotting: Group is -1
// for independent events, otherwise the index of its exclusive group.
type Decl struct {
	Name  string
	Prob  float64
	Group int
}

// Decls returns every declaration, grouped events first (ordered by group,
// then by their position in the group), then independent events sorted by
// name — an order that Restore-style loops can replay directly.
func (s *Space) Decls() []Decl {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Decl
	for gid, members := range s.groups {
		for _, n := range members {
			out = append(out, Decl{Name: n, Prob: s.basics[n].prob, Group: gid})
		}
	}
	var singles []Decl
	for n, info := range s.basics {
		if info.group == -1 {
			singles = append(singles, Decl{Name: n, Prob: info.prob, Group: -1})
		}
	}
	sort.Slice(singles, func(i, j int) bool { return singles[i].Name < singles[j].Name })
	return append(out, singles...)
}

// Len returns the number of declared basic events.
func (s *Space) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.basics)
}

func (s *Space) invalidate() {
	s.cacheMu.Lock()
	s.cache = make(map[string]float64)
	s.cacheMu.Unlock()
}

// Prob computes the exact probability of e. It enumerates joint states of
// the exclusive groups (and singleton events) that e mentions, so the cost is
// exponential only in the number of *distinct correlated groups mentioned by
// e*, never in the size of the space. Results are memoized per expression.
func (s *Space) Prob(e *Expr) (float64, error) {
	switch e.kind {
	case KindTrue:
		return 1, nil
	case KindFalse:
		return 0, nil
	case KindBasic:
		return s.BasicProb(e.name)
	}
	key := e.String()
	s.cacheMu.Lock()
	if p, ok := s.cache[key]; ok {
		s.cacheMu.Unlock()
		return p, nil
	}
	s.cacheMu.Unlock()

	p, err := s.enumerate(e)
	if err != nil {
		return 0, err
	}
	s.cacheMu.Lock()
	s.cache[key] = p
	s.cacheMu.Unlock()
	return p, nil
}

// MustProb is Prob but panics on error; for expressions whose basic events
// are known to be declared (e.g. internal tests and benchmarks).
func (s *Space) MustProb(e *Expr) float64 {
	p, err := s.Prob(e)
	if err != nil {
		panic(err)
	}
	return p
}

// factor is one independent block of basic events mentioned by an
// expression: either a singleton independent event or the mentioned members
// of one exclusive group.
type factor struct {
	names []string
	probs []float64
	excl  bool
}

func (s *Space) factorsOf(e *Expr) ([]factor, error) {
	names := e.Basics()
	s.mu.RLock()
	defer s.mu.RUnlock()
	byGroup := make(map[int]*factor)
	var singles []factor
	for _, n := range names {
		info, ok := s.basics[n]
		if !ok {
			return nil, fmt.Errorf("event: basic event %q not declared", n)
		}
		if info.group == -1 {
			singles = append(singles, factor{names: []string{n}, probs: []float64{info.prob}})
			continue
		}
		f := byGroup[info.group]
		if f == nil {
			f = &factor{excl: true}
			byGroup[info.group] = f
		}
		f.names = append(f.names, n)
		f.probs = append(f.probs, info.prob)
	}
	out := singles
	gids := make([]int, 0, len(byGroup))
	for g := range byGroup {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	for _, g := range gids {
		out = append(out, *byGroup[g])
	}
	return out, nil
}

// enumerate sums the probability of every joint state of the mentioned
// factors under which e evaluates to true.
func (s *Space) enumerate(e *Expr) (float64, error) {
	factors, err := s.factorsOf(e)
	if err != nil {
		return 0, err
	}
	assign := make(map[string]bool, 8)
	var rec func(i int, acc float64) float64
	rec = func(i int, acc float64) float64 {
		if acc == 0 {
			return 0
		}
		if i == len(factors) {
			if e.evaluate(assign) {
				return acc
			}
			return 0
		}
		f := factors[i]
		total := 0.0
		if f.excl {
			// One mentioned member true, or none of the mentioned members
			// true (residual includes unmentioned members and "nothing").
			residual := 1.0
			for j, n := range f.names {
				residual -= f.probs[j]
				for _, m := range f.names {
					assign[m] = m == n
				}
				total += rec(i+1, acc*f.probs[j])
			}
			if residual < 0 {
				residual = 0
			}
			for _, m := range f.names {
				assign[m] = false
			}
			total += rec(i+1, acc*residual)
		} else {
			n := f.names[0]
			assign[n] = true
			total += rec(i+1, acc*f.probs[0])
			assign[n] = false
			total += rec(i+1, acc*(1-f.probs[0]))
		}
		return total
	}
	return rec(0, 1), nil
}

// Independent reports whether two expressions mention disjoint sets of
// correlated blocks, i.e. whether P(a ∧ b) = P(a)·P(b) is guaranteed by the
// independence structure of the space.
func (s *Space) Independent(a, b *Expr) (bool, error) {
	fa, err := s.factorsOf(a)
	if err != nil {
		return false, err
	}
	fb, err := s.factorsOf(b)
	if err != nil {
		return false, err
	}
	seen := make(map[string]bool)
	s.mu.RLock()
	defer s.mu.RUnlock()
	mark := func(fs []factor, record bool) bool {
		for _, f := range fs {
			for _, n := range f.names {
				key := n
				if info := s.basics[n]; info.group != -1 {
					key = fmt.Sprintf("group:%d", info.group)
				}
				if record {
					seen[key] = true
				} else if seen[key] {
					return false
				}
			}
		}
		return true
	}
	mark(fa, true)
	return mark(fb, false), nil
}
