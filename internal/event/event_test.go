package event

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConstants(t *testing.T) {
	s := NewSpace()
	if p := s.MustProb(True()); p != 1 {
		t.Fatalf("P(⊤) = %g, want 1", p)
	}
	if p := s.MustProb(False()); p != 0 {
		t.Fatalf("P(⊥) = %g, want 0", p)
	}
}

func TestBasicProb(t *testing.T) {
	s := NewSpace()
	if err := s.Declare("e1", 0.3); err != nil {
		t.Fatal(err)
	}
	if p := s.MustProb(Basic("e1")); !almostEqual(p, 0.3) {
		t.Fatalf("P(e1) = %g, want 0.3", p)
	}
	if p := s.MustProb(Not(Basic("e1"))); !almostEqual(p, 0.7) {
		t.Fatalf("P(¬e1) = %g, want 0.7", p)
	}
}

func TestDeclareValidation(t *testing.T) {
	s := NewSpace()
	if err := s.Declare("e", -0.1); err == nil {
		t.Fatal("negative probability accepted")
	}
	if err := s.Declare("e", 1.1); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := s.Declare("e", math.NaN()); err == nil {
		t.Fatal("NaN probability accepted")
	}
	if err := s.DeclareExclusive([]string{"n1", "n2"}, []float64{math.NaN(), 0.1}); err == nil {
		t.Fatal("NaN group probability accepted")
	}
	if err := s.Declare("e", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Declare("e", 0.5); err != nil {
		t.Fatalf("idempotent redeclare rejected: %v", err)
	}
	if err := s.Declare("e", 0.6); err == nil {
		t.Fatal("conflicting redeclare accepted")
	}
}

func TestIndependentConjunction(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.5)
	s.Declare("b", 0.4)
	if p := s.MustProb(And(Basic("a"), Basic("b"))); !almostEqual(p, 0.2) {
		t.Fatalf("P(a∧b) = %g, want 0.2", p)
	}
	if p := s.MustProb(Or(Basic("a"), Basic("b"))); !almostEqual(p, 0.7) {
		t.Fatalf("P(a∨b) = %g, want 0.7", p)
	}
}

func TestSharedLineageNotDoubleCounted(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.5)
	// a ∧ ¬a is impossible; naive multiplication would give 0.25.
	if p := s.MustProb(And(Basic("a"), Not(Basic("a")))); p != 0 {
		t.Fatalf("P(a∧¬a) = %g, want 0", p)
	}
	// a ∨ ¬a is certain.
	if p := s.MustProb(Or(Basic("a"), Not(Basic("a")))); p != 1 {
		t.Fatalf("P(a∨¬a) = %g, want 1", p)
	}
	// Idempotence: a ∧ a has probability P(a).
	if p := s.MustProb(And(Basic("a"), Basic("a"))); !almostEqual(p, 0.5) {
		t.Fatalf("P(a∧a) = %g, want 0.5", p)
	}
}

func TestExclusiveGroup(t *testing.T) {
	s := NewSpace()
	err := s.DeclareExclusive([]string{"kitchen", "office", "hall"}, []float64{0.5, 0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Mutually exclusive: both at once is impossible.
	if p := s.MustProb(And(Basic("kitchen"), Basic("office"))); p != 0 {
		t.Fatalf("P(kitchen∧office) = %g, want 0", p)
	}
	// Disjunction adds up exactly.
	if p := s.MustProb(Or(Basic("kitchen"), Basic("office"))); !almostEqual(p, 0.8) {
		t.Fatalf("P(kitchen∨office) = %g, want 0.8", p)
	}
	// Negation accounts for residual mass (0.1 unmentioned + 0.1 nothing).
	if p := s.MustProb(Not(Or(Basic("kitchen"), Basic("office"), Basic("hall")))); !almostEqual(p, 0.1) {
		t.Fatalf("P(nowhere) = %g, want 0.1", p)
	}
}

func TestExclusiveGroupValidation(t *testing.T) {
	s := NewSpace()
	if err := s.DeclareExclusive([]string{"a", "b"}, []float64{0.8, 0.5}); err == nil {
		t.Fatal("overfull exclusive group accepted")
	}
	if err := s.DeclareExclusive(nil, nil); err == nil {
		t.Fatal("empty exclusive group accepted")
	}
	if err := s.DeclareExclusive([]string{"a"}, []float64{0.2, 0.3}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	s.Declare("x", 0.5)
	if err := s.DeclareExclusive([]string{"x", "y"}, []float64{0.2, 0.3}); err == nil {
		t.Fatal("group reusing declared event accepted")
	}
}

func TestUndeclaredBasicIsError(t *testing.T) {
	s := NewSpace()
	if _, err := s.Prob(Basic("ghost")); err == nil {
		t.Fatal("undeclared basic event accepted")
	}
	if _, err := s.Prob(And(True(), Basic("ghost"))); err == nil {
		t.Fatal("undeclared basic event inside composite accepted")
	}
}

func TestConstructorsFold(t *testing.T) {
	a := Basic("a")
	cases := []struct {
		got, want *Expr
	}{
		{And(), True()},
		{Or(), False()},
		{And(a, True()), a},
		{Or(a, False()), a},
		{And(a, False()), False()},
		{Or(a, True()), True()},
		{Not(Not(a)), a},
		{Not(True()), False()},
		{Not(False()), True()},
		{And(a, a), a},
		{And(And(a, Basic("b")), Basic("c")), And(a, Basic("b"), Basic("c"))},
	}
	for i, c := range cases {
		if !Equal(c.got, c.want) {
			t.Errorf("case %d: got %s, want %s", i, c.got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	e := Or(And(Basic("a"), Not(Basic("b"))), Basic("c"))
	want := "(a ∧ ¬b) ∨ c"
	if e.String() != want {
		t.Fatalf("String() = %q, want %q", e.String(), want)
	}
}

func TestBasics(t *testing.T) {
	e := Or(And(Basic("b"), Basic("a")), Not(Basic("c")))
	got := e.Basics()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Basics() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Basics() = %v, want %v", got, want)
		}
	}
}

func TestIndependent(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.5)
	s.Declare("b", 0.5)
	s.DeclareExclusive([]string{"g1", "g2"}, []float64{0.4, 0.4})
	ok, err := s.Independent(Basic("a"), Basic("b"))
	if err != nil || !ok {
		t.Fatalf("a,b independent: got %v,%v", ok, err)
	}
	ok, _ = s.Independent(Basic("a"), And(Basic("a"), Basic("b")))
	if ok {
		t.Fatal("a and a∧b reported independent")
	}
	ok, _ = s.Independent(Basic("g1"), Basic("g2"))
	if ok {
		t.Fatal("members of one exclusive group reported independent")
	}
}

func TestCacheInvalidationOnDeclare(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.5)
	e := And(Basic("a"), Basic("b"))
	if _, err := s.Prob(e); err == nil {
		t.Fatal("expected error before b declared")
	}
	s.Declare("b", 0.5)
	p, err := s.Prob(e)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, 0.25) {
		t.Fatalf("P(a∧b) = %g, want 0.25", p)
	}
}

// brute computes the probability of e by enumerating all assignments of the
// given independent events — an oracle for the property tests.
func brute(e *Expr, names []string, probs map[string]float64) float64 {
	total := 0.0
	n := len(names)
	for mask := 0; mask < 1<<n; mask++ {
		assign := make(map[string]bool, n)
		p := 1.0
		for i, name := range names {
			if mask&(1<<i) != 0 {
				assign[name] = true
				p *= probs[name]
			} else {
				p *= 1 - probs[name]
			}
		}
		if e.evaluate(assign) {
			total += p
		}
	}
	return total
}

// randExpr builds a random expression over the given basic names.
func randExpr(r *rand.Rand, names []string, depth int) *Expr {
	if depth == 0 || r.Intn(3) == 0 {
		return Basic(names[r.Intn(len(names))])
	}
	switch r.Intn(3) {
	case 0:
		return Not(randExpr(r, names, depth-1))
	case 1:
		return And(randExpr(r, names, depth-1), randExpr(r, names, depth-1))
	default:
		return Or(randExpr(r, names, depth-1), randExpr(r, names, depth-1))
	}
}

func TestProbMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	names := []string{"p", "q", "r", "s"}
	for trial := 0; trial < 200; trial++ {
		s := NewSpace()
		probs := make(map[string]float64, len(names))
		for _, n := range names {
			p := r.Float64()
			probs[n] = p
			s.Declare(n, p)
		}
		e := randExpr(r, names, 4)
		got := s.MustProb(e)
		want := brute(e, names, probs)
		if !almostEqual(got, want) {
			t.Fatalf("trial %d: P(%s) = %g, brute force %g", trial, e, got, want)
		}
	}
}

func TestQuickProbabilityBounds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(p1, p2, p3 float64) bool {
		clamp := func(x float64) float64 {
			x = math.Abs(x)
			return x - math.Floor(x)
		}
		s := NewSpace()
		s.Declare("x", clamp(p1))
		s.Declare("y", clamp(p2))
		s.Declare("z", clamp(p3))
		e := randExpr(r, []string{"x", "y", "z"}, 5)
		p := s.MustProb(e)
		return p >= -1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		s := NewSpace()
		names := []string{"a", "b", "c"}
		for _, n := range names {
			s.Declare(n, rr.Float64())
		}
		x := randExpr(r, names, 3)
		y := randExpr(r, names, 3)
		lhs := s.MustProb(Not(And(x, y)))
		rhs := s.MustProb(Or(Not(x), Not(y)))
		return almostEqual(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProbCacheConcurrent(t *testing.T) {
	s := NewSpace()
	s.Declare("a", 0.3)
	s.Declare("b", 0.6)
	e := Or(Basic("a"), Basic("b"))
	done := make(chan float64, 16)
	for i := 0; i < 16; i++ {
		go func() { done <- s.MustProb(e) }()
	}
	for i := 0; i < 16; i++ {
		if p := <-done; !almostEqual(p, 0.72) {
			t.Fatalf("concurrent Prob = %g, want 0.72", p)
		}
	}
}
