// Package experiments implements the paper's evaluation artifacts as
// runnable procedures — one per table/figure plus the ablations listed in
// DESIGN.md §4. cmd/carbench prints them; the root bench_test.go measures
// them. Each experiment returns both the measured values and the paper's
// reported values so EXPERIMENTS.md can be regenerated mechanically.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/history"
	"repro/internal/ir"
	"repro/internal/mapping"
	"repro/internal/prefs"
	"repro/internal/situation"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E1 — Table 1 + §4.2 worked example.

// E1Row is one program of Table 1 with the paper's score and ours.
type E1Row struct {
	Program  string
	Paper    float64
	Measured map[string]float64 // ranker name -> score
}

// E1Result is the outcome of the worked example.
type E1Result struct {
	Rows    []E1Row
	Rankers []string
}

// paperTable1 is §4.2's hand calculation.
var paperTable1 = []struct {
	id    string
	score float64
}{
	{"Channel5News", 0.6006},
	{"BBCNews", 0.18},
	{"Oprah", 0.071},
	{"MPFS", 0.02},
}

// SetupTable1 loads the §4.2 example into a fresh loader.
func SetupTable1() (*mapping.Loader, []prefs.Rule, error) {
	db := engine.New()
	l := mapping.NewLoader(db, nil)
	if err := l.DeclareConcept("TvProgram"); err != nil {
		return nil, nil, err
	}
	for _, r := range []string{"hasGenre", "hasSubject"} {
		if err := l.DeclareRole(r); err != nil {
			return nil, nil, err
		}
	}
	space := db.Space()
	steps := []error{
		space.Declare("oprah_hi", 0.85),
		space.Declare("c5_hi", 0.95),
		space.Declare("c5_news", 0.85),
	}
	for _, p := range []string{"Oprah", "BBCNews", "Channel5News", "MPFS"} {
		steps = append(steps, l.AssertConcept("TvProgram", p, nil))
	}
	steps = append(steps,
		l.AssertRole("hasGenre", "Oprah", "HUMAN-INTEREST", event.Basic("oprah_hi")),
		l.AssertRole("hasGenre", "Channel5News", "HUMAN-INTEREST", event.Basic("c5_hi")),
		l.AssertRole("hasSubject", "BBCNews", "News", nil),
		l.AssertRole("hasSubject", "Channel5News", "News", event.Basic("c5_news")),
		situation.New("peter").Certain("Weekend").Certain("Breakfast").Apply(l),
	)
	for _, err := range steps {
		if err != nil {
			return nil, nil, err
		}
	}
	rules := []prefs.Rule{
		prefs.MustParseRule("RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8"),
		prefs.MustParseRule("RULE R2 WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.9"),
	}
	return l, rules, nil
}

// RunE1 executes the worked example on all three rankers.
func RunE1() (*E1Result, error) {
	l, rules, err := SetupTable1()
	if err != nil {
		return nil, err
	}
	req := core.Request{User: "peter", Target: dl.Atom("TvProgram"), Rules: rules}
	rankers := []core.Ranker{
		core.NewNaiveRanker(l), core.NewViewRanker(l), core.NewFactorizedRanker(l),
	}
	res := &E1Result{}
	byProgram := make(map[string]map[string]float64)
	for _, r := range rankers {
		res.Rankers = append(res.Rankers, r.Name())
		results, err := r.Rank(req)
		if err != nil {
			return nil, fmt.Errorf("experiments: e1 %s: %w", r.Name(), err)
		}
		for _, out := range results {
			if byProgram[out.ID] == nil {
				byProgram[out.ID] = make(map[string]float64)
			}
			byProgram[out.ID][r.Name()] = out.Score
		}
	}
	for _, want := range paperTable1 {
		res.Rows = append(res.Rows, E1Row{
			Program:  want.id,
			Paper:    want.score,
			Measured: byProgram[want.id],
		})
	}
	return res, nil
}

// Table renders E1 as a benchutil table.
func (r *E1Result) Table() *benchutil.Table {
	t := &benchutil.Table{Header: append([]string{"program", "paper"}, r.Rankers...)}
	for _, row := range r.Rows {
		cells := []string{row.Program, fmt.Sprintf("%.4f", row.Paper)}
		for _, name := range r.Rankers {
			cells = append(cells, fmt.Sprintf("%.4f", row.Measured[name]))
		}
		t.Add(cells...)
	}
	return t
}

// MaxError returns the largest |paper − measured| across rows and rankers.
func (r *E1Result) MaxError() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		for _, v := range row.Measured {
			if d := math.Abs(v - row.Paper); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// E2 — Figure 1: the history abstraction and σ mining.

// E2Result captures the Figure 1 reproduction.
type E2Result struct {
	TrafficSigma  float64 // mined; paper: 0.8
	WeatherSigma  float64 // mined; paper: 0.6
	PNeither      float64 // computed from mined σ; paper: 0.08
	PaperPNeither float64
	Episodes      int
}

// RunE2 generates a workday-morning history from the Figure 1 ground truth,
// mines σ back, and recomputes the paper's closing probability
// (1−σ_traffic)(1−σ_weather).
func RunE2(episodes int, seed int64) (*E2Result, error) {
	gen := &history.Generator{
		Truth: []history.GroundTruth{
			{Context: "WorkdayMorning", DocFeature: "traffic", Sigma: 0.8},
			{Context: "WorkdayMorning", DocFeature: "weather", Sigma: 0.6},
		},
		Contexts: []string{"WorkdayMorning"},
		Docs: []history.Doc{
			{ID: "t", Features: map[string]bool{"traffic": true}},
			{ID: "w", Features: map[string]bool{"weather": true}},
			{ID: "o", Features: map[string]bool{"other": true}},
		},
		Rng: rand.New(rand.NewSource(seed)),
	}
	log := history.NewLog()
	if err := gen.Generate(log, episodes); err != nil {
		return nil, err
	}
	tr, ok := log.MineSigma("WorkdayMorning", "traffic")
	if !ok {
		return nil, fmt.Errorf("experiments: e2: no traffic support")
	}
	we, ok := log.MineSigma("WorkdayMorning", "weather")
	if !ok {
		return nil, fmt.Errorf("experiments: e2: no weather support")
	}
	return &E2Result{
		TrafficSigma:  tr.Sigma,
		WeatherSigma:  we.Sigma,
		PNeither:      (1 - tr.Sigma) * (1 - we.Sigma),
		PaperPNeither: 0.08,
		Episodes:      episodes,
	}, nil
}

// Table renders E2.
func (r *E2Result) Table() *benchutil.Table {
	t := &benchutil.Table{Header: []string{"quantity", "paper", "measured"}}
	t.Add("σ(workday morning, traffic)", "0.80", fmt.Sprintf("%.3f", r.TrafficSigma))
	t.Add("σ(workday morning, weather)", "0.60", fmt.Sprintf("%.3f", r.WeatherSigma))
	t.Add("P(neither-featured ideal)", fmt.Sprintf("%.2f", r.PaperPNeither), fmt.Sprintf("%.4f", r.PNeither))
	return t
}

// ---------------------------------------------------------------------------
// E3 — §5 scalability: query time vs number of rules.

// E3Config parametrizes the scalability run.
type E3Config struct {
	Spec     workload.Spec
	MaxRules int
	Timeout  time.Duration // per-point budget (the paper cut off at 30 min)
	Ranker   string        // "view" (paper), "naive" or "factorized"
}

// DefaultE3Config reproduces the paper's setup with a CI-friendly budget.
func DefaultE3Config() E3Config {
	return E3Config{
		Spec:     workload.DefaultSpec(),
		MaxRules: 8,
		Timeout:  30 * time.Second,
		Ranker:   "view",
	}
}

// E3Result is the measured sweep plus the paper's reported buckets.
type E3Result struct {
	Config E3Config
	Points []benchutil.Point
	Growth []float64
}

// PaperE3 summarizes the paper's §5 measurements.
const PaperE3 = "paper: 1-4 rules <1s; 5 rules 4-20s; 6 rules 4-20s; 7 rules DNF (>30min)"

// RunE3 generates the dataset once and sweeps the rule count. The dataset
// and context are rebuilt per point inside the timed function? No — the
// paper measures query time only, so the sweep times exactly one ranker
// call per point; context and rules are prepared outside the timer.
func RunE3(cfg E3Config) (*E3Result, error) {
	d, err := workload.Generate(cfg.Spec)
	if err != nil {
		return nil, err
	}
	if err := d.ApplyBenchContext(cfg.MaxRules, false); err != nil {
		return nil, err
	}
	var ranker core.Ranker
	switch cfg.Ranker {
	case "view":
		ranker = core.NewViewRanker(d.Loader)
	case "naive":
		ranker = core.NewNaiveRanker(d.Loader)
	case "factorized":
		ranker = core.NewFactorizedRanker(d.Loader)
	default:
		return nil, fmt.Errorf("experiments: unknown ranker %q", cfg.Ranker)
	}
	xs := make([]int, cfg.MaxRules)
	for i := range xs {
		xs[i] = i + 1
	}
	points := benchutil.RunSeries(xs, cfg.Timeout, func(k int) (string, error) {
		rules, err := d.Rules(k)
		if err != nil {
			return "", err
		}
		res, err := ranker.Rank(core.Request{
			User:   d.User,
			Target: dl.Atom("TvProgram"),
			Rules:  rules,
		})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d results", len(res)), nil
	})
	return &E3Result{Config: cfg, Points: points, Growth: benchutil.GrowthFactors(points)}, nil
}

// Table renders E3 with the paper's bucket next to each point.
func (r *E3Result) Table() *benchutil.Table {
	t := &benchutil.Table{Header: []string{"rules", "measured (" + r.Config.Ranker + ")", "paper (PostgreSQL 2006)", "note"}}
	for _, p := range r.Points {
		paper := ""
		switch {
		case p.X <= 4:
			paper = "<1s"
		case p.X <= 6:
			paper = "4-20s"
		default:
			paper = "DNF (>30min)"
		}
		t.Add(fmt.Sprintf("%d", p.X), p.Label(), paper, p.Extra)
	}
	return t
}

// ---------------------------------------------------------------------------
// A1 — ablation: the three rankers on the same sweep.

// A1Result compares rankers on the scalability workload.
type A1Result struct {
	Rankers []string
	Series  map[string][]benchutil.Point
}

// RunA1 sweeps each ranker with the given per-point budget on a shared
// dataset.
func RunA1(spec workload.Spec, maxRules int, timeout time.Duration) (*A1Result, error) {
	d, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	if err := d.ApplyBenchContext(maxRules, false); err != nil {
		return nil, err
	}
	out := &A1Result{Series: make(map[string][]benchutil.Point)}
	for _, name := range []string{"view", "naive", "factorized"} {
		var ranker core.Ranker
		switch name {
		case "view":
			ranker = core.NewViewRanker(d.Loader)
		case "naive":
			ranker = core.NewNaiveRanker(d.Loader)
		default:
			ranker = core.NewFactorizedRanker(d.Loader)
		}
		xs := make([]int, maxRules)
		for i := range xs {
			xs[i] = i + 1
		}
		out.Rankers = append(out.Rankers, name)
		out.Series[name] = benchutil.RunSeries(xs, timeout, func(k int) (string, error) {
			rules, err := d.Rules(k)
			if err != nil {
				return "", err
			}
			_, err = ranker.Rank(core.Request{User: d.User, Target: dl.Atom("TvProgram"), Rules: rules})
			return "", err
		})
	}
	return out, nil
}

// Table renders A1 with one column per ranker.
func (r *A1Result) Table() *benchutil.Table {
	t := &benchutil.Table{Header: append([]string{"rules"}, r.Rankers...)}
	maxLen := 0
	for _, s := range r.Series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for i := 0; i < maxLen; i++ {
		cells := []string{fmt.Sprintf("%d", i+1)}
		for _, name := range r.Rankers {
			s := r.Series[name]
			if i < len(s) {
				cells = append(cells, s[i].Label())
			} else {
				cells = append(cells, "skipped (prior DNF)")
			}
		}
		t.Add(cells...)
	}
	return t
}

// ---------------------------------------------------------------------------
// A2 — ablation: λ-weighting of query-dependent vs context score (§6).

// A2Point is ranking quality at one λ.
type A2Point struct {
	Lambda float64
	Tau    float64 // Kendall rank correlation with the ground-truth order
}

// A2Result is the λ sweep.
type A2Result struct {
	Points []A2Point
	BestAt float64
}

// RunA2 builds a small corpus where the user's true interest depends on
// both the query and the context: the ground-truth ordering combines the
// noise-free context score with the query score. We then rank using a
// noisy sensed context and sweep λ; quality should peak strictly between
// the pure-query and pure-context extremes, which is the paper's §6
// motivation for studying the weighting.
func RunA2(seed int64) (*A2Result, error) {
	spec := workload.SmallSpec()
	spec.Programs = 30
	spec.Seed = seed
	d, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	rules, err := d.Rules(3)
	if err != nil {
		return nil, err
	}
	ranker := core.NewFactorizedRanker(d.Loader)
	target := dl.Atom("TvProgram")

	// Ground truth: certain context.
	if err := d.ApplyBenchContext(3, true); err != nil {
		return nil, err
	}
	truthCtx, err := ranker.Rank(core.Request{User: d.User, Target: target, Rules: rules})
	if err != nil {
		return nil, err
	}
	ctxTrue := make(map[string]float64, len(truthCtx))
	for _, r := range truthCtx {
		ctxTrue[r.ID] = r.Score
	}

	// Query-dependent part: the user queries for two genres; the index
	// holds the certain program features.
	ix := ir.NewIndex()
	res, err := d.Loader.DB().Query("SELECT src, dst FROM r_hasGenre")
	if err != nil {
		return nil, err
	}
	feats := make(map[string]map[string]int)
	for _, row := range res.Rows {
		if feats[row[0].S] == nil {
			feats[row[0].S] = make(map[string]int)
		}
		feats[row[0].S][row[1].S]++
	}
	for id, f := range feats {
		if err := ix.Add(ir.Document{ID: id, Features: f}); err != nil {
			return nil, err
		}
	}
	model := ir.Model{Index: ix, Lambda: 0.2}
	query := []string{d.Genres[0], d.Genres[1]}

	qd := make(map[string]float64)
	var ids []string
	for id := range ctxTrue {
		s, err := model.Score(id, query)
		if err != nil {
			return nil, err
		}
		qd[id] = s
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// The true interest blends both signals equally.
	truth := make(map[string]float64, len(ids))
	for _, id := range ids {
		truth[id], _ = core.SmoothedScore(qd[id], ctxTrue[id], 0.5)
	}

	// Observed: noisy context (the worst case for the context half).
	rng := rand.New(rand.NewSource(seed + 1))
	ctxNoisy := situation.New(d.User)
	for i := 0; i < 3; i++ {
		p := 0.55 + 0.35*rng.Float64()
		ctxNoisy.Add(workload.BenchContextConcept(i), p)
	}
	if err := ctxNoisy.Apply(d.Loader); err != nil {
		return nil, err
	}
	observed, err := ranker.Rank(core.Request{User: d.User, Target: target, Rules: rules})
	if err != nil {
		return nil, err
	}
	ctxObs := make(map[string]float64, len(observed))
	for _, r := range observed {
		ctxObs[r.ID] = r.Score
	}

	out := &A2Result{}
	bestTau := math.Inf(-1)
	for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
		combined := make(map[string]float64, len(ids))
		for _, id := range ids {
			combined[id], _ = core.SmoothedScore(qd[id], ctxObs[id], lambda)
		}
		tau := kendallTau(ids, truth, combined)
		out.Points = append(out.Points, A2Point{Lambda: lambda, Tau: tau})
		if tau > bestTau {
			bestTau = tau
			out.BestAt = lambda
		}
	}
	return out, nil
}

// kendallTau computes the Kendall rank correlation of two score maps over
// the given ids.
func kendallTau(ids []string, a, b map[string]float64) float64 {
	concordant, discordant := 0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			da := a[ids[i]] - a[ids[j]]
			db := b[ids[i]] - b[ids[j]]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	total := concordant + discordant
	if total == 0 {
		return 0
	}
	return float64(concordant-discordant) / float64(total)
}

// Table renders A2.
func (r *A2Result) Table() *benchutil.Table {
	t := &benchutil.Table{Header: []string{"lambda", "kendall tau vs truth"}}
	for _, p := range r.Points {
		t.Add(fmt.Sprintf("%.2f", p.Lambda), fmt.Sprintf("%+.3f", p.Tau))
	}
	return t
}

// ---------------------------------------------------------------------------
// A4 — ablation: Monte Carlo ranking accuracy vs samples.

// A4Point measures the sampled ranker at one sample budget.
type A4Point struct {
	Samples  int
	MaxErr   float64       // worst |sampled − exact| over all candidates
	Tau      float64       // Kendall tau of sampled vs exact ranking
	Duration time.Duration // wall clock of the sampled Rank call
}

// A4Result is the sweep over sample budgets.
type A4Result struct {
	Points []A4Point
	Rules  int
}

// RunA4 compares the Monte Carlo ranker against the exact factorized
// ranker on the scalability workload: the error should shrink as
// O(1/√samples) while the runtime grows linearly — the anytime trade-off
// the §6 performance discussion motivates.
func RunA4(spec workload.Spec, k int, budgets []int, seed int64) (*A4Result, error) {
	d, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	if err := d.ApplyBenchContext(k, false); err != nil {
		return nil, err
	}
	rules, err := d.Rules(k)
	if err != nil {
		return nil, err
	}
	req := core.Request{User: d.User, Target: dl.Atom("TvProgram"), Rules: rules}
	exact, err := core.NewFactorizedRanker(d.Loader).Rank(req)
	if err != nil {
		return nil, err
	}
	exactScores := make(map[string]float64, len(exact))
	var ids []string
	for _, r := range exact {
		exactScores[r.ID] = r.Score
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)

	out := &A4Result{Rules: k}
	for _, n := range budgets {
		ranker := core.NewSampledRanker(d.Loader, n, seed)
		start := time.Now()
		approx, err := ranker.Rank(req)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		approxScores := make(map[string]float64, len(approx))
		worst := 0.0
		for _, r := range approx {
			approxScores[r.ID] = r.Score
			if d := math.Abs(r.Score - exactScores[r.ID]); d > worst {
				worst = d
			}
		}
		out.Points = append(out.Points, A4Point{
			Samples:  n,
			MaxErr:   worst,
			Tau:      kendallTau(ids, exactScores, approxScores),
			Duration: elapsed,
		})
	}
	return out, nil
}

// Table renders A4.
func (r *A4Result) Table() *benchutil.Table {
	t := &benchutil.Table{Header: []string{"samples", "max |err|", "tau vs exact", "time"}}
	for _, p := range r.Points {
		t.Add(fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.4f", p.MaxErr),
			fmt.Sprintf("%+.3f", p.Tau),
			p.Duration.Round(time.Millisecond).String())
	}
	return t
}

// ---------------------------------------------------------------------------
// A3 — ablation: σ-miner convergence.

// A3Point is the miner's error at one history length.
type A3Point struct {
	Episodes int
	MeanErr  float64
}

// A3Result is the convergence sweep.
type A3Result struct {
	Points []A3Point
}

// RunA3 measures |mined σ − true σ| averaged over the ground-truth pairs as
// the history grows.
func RunA3(lengths []int, seed int64) (*A3Result, error) {
	truth := []history.GroundTruth{
		{Context: "morning", DocFeature: "traffic", Sigma: 0.8},
		{Context: "morning", DocFeature: "weather", Sigma: 0.6},
		{Context: "evening", DocFeature: "film", Sigma: 0.7},
	}
	docs := []history.Doc{
		{ID: "t", Features: map[string]bool{"traffic": true}},
		{ID: "w", Features: map[string]bool{"weather": true}},
		{ID: "f", Features: map[string]bool{"film": true}},
		{ID: "o", Features: map[string]bool{"other": true}},
	}
	out := &A3Result{}
	for _, n := range lengths {
		gen := &history.Generator{
			Truth:    truth,
			Contexts: []string{"morning", "evening"},
			Docs:     docs,
			Rng:      rand.New(rand.NewSource(seed)),
		}
		log := history.NewLog()
		if err := gen.Generate(log, n); err != nil {
			return nil, err
		}
		sum, cnt := 0.0, 0
		for _, tr := range truth {
			est, ok := log.MineSigma(tr.Context, tr.DocFeature)
			if !ok {
				continue
			}
			sum += math.Abs(est.Sigma - tr.Sigma)
			cnt++
		}
		if cnt == 0 {
			continue
		}
		out.Points = append(out.Points, A3Point{Episodes: n, MeanErr: sum / float64(cnt)})
	}
	return out, nil
}

// Table renders A3.
func (r *A3Result) Table() *benchutil.Table {
	t := &benchutil.Table{Header: []string{"episodes", "mean |σ̂ − σ|"}}
	for _, p := range r.Points {
		t.Add(fmt.Sprintf("%d", p.Episodes), fmt.Sprintf("%.4f", p.MeanErr))
	}
	return t
}
