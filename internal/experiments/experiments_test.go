package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestRunE1MatchesPaper(t *testing.T) {
	res, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxError() > 1e-4 {
		t.Fatalf("max error %g vs paper", res.MaxError())
	}
	if len(res.Rows) != 4 || len(res.Rankers) != 3 {
		t.Fatalf("result shape: %+v", res)
	}
	var b strings.Builder
	res.Table().Write(&b)
	if !strings.Contains(b.String(), "0.6006") {
		t.Fatalf("table missing paper score:\n%s", b.String())
	}
}

func TestRunE2RecoversFigure1(t *testing.T) {
	res, err := RunE2(5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TrafficSigma-0.8) > 0.05 || math.Abs(res.WeatherSigma-0.6) > 0.05 {
		t.Fatalf("mined σ = %.3f / %.3f", res.TrafficSigma, res.WeatherSigma)
	}
	if math.Abs(res.PNeither-0.08) > 0.03 {
		t.Fatalf("P(neither) = %.4f", res.PNeither)
	}
	var b strings.Builder
	res.Table().Write(&b)
	if !strings.Contains(b.String(), "0.08") {
		t.Fatalf("table:\n%s", b.String())
	}
}

func TestRunE3SmallShowsGrowth(t *testing.T) {
	cfg := E3Config{
		Spec:     workload.SmallSpec(),
		MaxRules: 4,
		Timeout:  20 * time.Second,
		Ranker:   "view",
	}
	res, err := RunE3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// The shape check: once past the fixed-overhead regime, runtime grows.
	last := res.Points[len(res.Points)-1]
	first := res.Points[0]
	if !last.TimedOut && last.Duration < first.Duration {
		t.Fatalf("no growth: first %v, last %v", first.Duration, last.Duration)
	}
	var b strings.Builder
	res.Table().Write(&b)
	if !strings.Contains(b.String(), "DNF (>30min)") && !strings.Contains(b.String(), "<1s") {
		t.Fatalf("paper column missing:\n%s", b.String())
	}
}

func TestRunE3RejectsUnknownRanker(t *testing.T) {
	cfg := DefaultE3Config()
	cfg.Ranker = "quantum"
	cfg.Spec = workload.SmallSpec()
	if _, err := RunE3(cfg); err == nil {
		t.Fatal("unknown ranker accepted")
	}
}

func TestRunA1FactorizedBeatsViewAtScale(t *testing.T) {
	res, err := RunA1(workload.SmallSpec(), 4, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	view := res.Series["view"]
	fact := res.Series["factorized"]
	if len(view) == 0 || len(fact) == 0 {
		t.Fatal("missing series")
	}
	// At the largest completed rule count, the factorized ranker must be
	// faster than the view ranker.
	k := len(view) - 1
	if view[k].TimedOut {
		k--
	}
	if k >= 0 && k < len(fact) && fact[k].Duration > view[k].Duration {
		t.Fatalf("factorized (%v) slower than view (%v) at %d rules",
			fact[k].Duration, view[k].Duration, k+1)
	}
	var b strings.Builder
	res.Table().Write(&b)
	if !strings.Contains(b.String(), "factorized") {
		t.Fatalf("table:\n%s", b.String())
	}
}

func TestRunA2SweepShape(t *testing.T) {
	res, err := RunA2(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %v", res.Points)
	}
	for _, p := range res.Points {
		if p.Tau < -1 || p.Tau > 1 {
			t.Fatalf("tau out of range: %v", p)
		}
	}
	// The blended truth contains both signals, so some mixed λ must do at
	// least as well as both extremes.
	var tau0, tau1, best float64 = 0, 0, math.Inf(-1)
	for _, p := range res.Points {
		if p.Lambda == 0 {
			tau0 = p.Tau
		}
		if p.Lambda == 1 {
			tau1 = p.Tau
		}
		if p.Tau > best {
			best = p.Tau
		}
	}
	if best < tau0 || best < tau1 {
		t.Fatalf("sweep maximum below an extreme: %+v", res.Points)
	}
}

func TestRunA3ErrorShrinks(t *testing.T) {
	res, err := RunA3([]int{20, 200, 2000}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %v", res.Points)
	}
	if res.Points[2].MeanErr > res.Points[0].MeanErr+0.02 {
		t.Fatalf("error did not shrink: %+v", res.Points)
	}
	if res.Points[2].MeanErr > 0.05 {
		t.Fatalf("final error too large: %+v", res.Points[2])
	}
}

func TestRunA4AccuracyImproves(t *testing.T) {
	res, err := RunA4(workload.SmallSpec(), 4, []int{100, 20000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Rules != 4 {
		t.Fatalf("result = %+v", res)
	}
	small, large := res.Points[0], res.Points[1]
	if large.MaxErr > small.MaxErr+1e-9 && large.MaxErr > 0.005 {
		t.Fatalf("error did not shrink: %+v", res.Points)
	}
	if large.Tau < 0.8 {
		t.Fatalf("large-budget tau = %g", large.Tau)
	}
}

func TestKendallTau(t *testing.T) {
	ids := []string{"a", "b", "c"}
	x := map[string]float64{"a": 3, "b": 2, "c": 1}
	if tau := kendallTau(ids, x, x); tau != 1 {
		t.Fatalf("self tau = %g", tau)
	}
	y := map[string]float64{"a": 1, "b": 2, "c": 3}
	if tau := kendallTau(ids, x, y); tau != -1 {
		t.Fatalf("reversed tau = %g", tau)
	}
	z := map[string]float64{"a": 1, "b": 1, "c": 1}
	if tau := kendallTau(ids, x, z); tau != 0 {
		t.Fatalf("tied tau = %g", tau)
	}
}
