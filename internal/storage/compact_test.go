package storage

import (
	"fmt"
	"testing"
)

// TestDeleteCompactsTombstones: a clear/refill churn loop (the context-
// concept pattern) must not accumulate dead rows or index garbage.
func TestDeleteCompactsTombstones(t *testing.T) {
	schema, err := NewSchema(Column{Name: "id", Type: TypeText})
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable("churn", schema)
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 1000; round++ {
		for i := 0; i < 10; i++ {
			if err := tab.Insert(Row{Text(fmt.Sprintf("r%d", i))}); err != nil {
				t.Fatal(err)
			}
		}
		if got := tab.Len(); got != 10 {
			t.Fatalf("round %d: Len = %d, want 10", round, got)
		}
		rows, err := tab.Lookup("id", Text("r3"))
		if err != nil || len(rows) != 1 {
			t.Fatalf("round %d: lookup = %v, %v", round, rows, err)
		}
		if n := tab.Delete(func(Row) bool { return true }); n != 10 {
			t.Fatalf("round %d: deleted %d, want 10", round, n)
		}
	}
	tab.mu.RLock()
	heap, tombs := len(tab.rows), len(tab.deleted)
	tab.mu.RUnlock()
	if heap != 0 || tombs != 0 {
		t.Fatalf("heap holds %d rows and %d tombstones after churn, want 0/0", heap, tombs)
	}
}

// TestScanConcurrentWithDelete: Scan iterates lock-free over snapshot
// references, so Delete must never mutate the maps/slices a running scan
// holds (copy-on-write tombstones, freshly allocated compactions). Run
// with -race.
func TestScanConcurrentWithDelete(t *testing.T) {
	schema, err := NewSchema(Column{Name: "id", Type: TypeText})
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable("t", schema)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 300; round++ {
			for i := 0; i < 20; i++ {
				if err := tab.Insert(Row{Text(fmt.Sprintf("r%d", i))}); err != nil {
					t.Error(err)
					return
				}
			}
			tab.Delete(func(Row) bool { return true })
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		n := 0
		if err := tab.Scan(func(Row) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n > 20 {
			t.Fatalf("scan saw %d rows, more than ever live", n)
		}
	}
}

// TestPartialDeleteKeepsOrderAcrossCompaction: compaction renumbers rows
// but must preserve insertion order and index correctness.
func TestPartialDeleteKeepsOrderAcrossCompaction(t *testing.T) {
	schema, err := NewSchema(Column{Name: "n", Type: TypeInt})
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable("t", schema)
	if err := tab.CreateIndex("n"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tab.Insert(Row{Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the even rows: 50 tombstones vs 50 live triggers no compaction
	// (dead must exceed live); one more delete tips it over.
	if n := tab.Delete(func(r Row) bool { return r[0].I%2 == 0 }); n != 50 {
		t.Fatalf("deleted %d, want 50", n)
	}
	if n := tab.Delete(func(r Row) bool { return r[0].I == 1 }); n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	tab.mu.RLock()
	heap := len(tab.rows)
	tab.mu.RUnlock()
	if heap != 49 {
		t.Fatalf("heap = %d rows after compaction, want 49", heap)
	}
	var got []int64
	if err := tab.Scan(func(r Row) error {
		got = append(got, r[0].I)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := int64(2*i + 3); v != want {
			t.Fatalf("row %d = %d, want %d (order lost)", i, v, want)
		}
	}
	rows, err := tab.Lookup("n", Int(99))
	if err != nil || len(rows) != 1 {
		t.Fatalf("post-compaction lookup = %v, %v", rows, err)
	}
}
