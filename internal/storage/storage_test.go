package storage

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func mustSchema(t *testing.T, cols ...Column) Schema {
	t.Helper()
	s, err := NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTypeFromName(t *testing.T) {
	cases := map[string]Type{
		"INT": TypeInt, "INTEGER": TypeInt, "BIGINT": TypeInt,
		"FLOAT": TypeFloat, "REAL": TypeFloat, "DOUBLE": TypeFloat,
		"TEXT": TypeText, "VARCHAR": TypeText,
		"BOOL": TypeBool, "BOOLEAN": TypeBool,
		"EVENT": TypeEvent,
	}
	for name, want := range cases {
		got, err := TypeFromName(name)
		if err != nil || got != want {
			t.Errorf("TypeFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := TypeFromName("BLOB"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestValueBasics(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("zero Value is not NULL")
	}
	if Int(3).String() != "3" || Text("x").String() != "x" || Bool(true).String() != "TRUE" {
		t.Fatal("String rendering wrong")
	}
	if Event(nil).T != TypeNull {
		t.Fatal("Event(nil) should be NULL")
	}
	f, err := Int(4).AsFloat()
	if err != nil || f != 4 {
		t.Fatalf("Int.AsFloat = %v, %v", f, err)
	}
	if _, err := Text("x").AsFloat(); err == nil {
		t.Fatal("text coerced to float")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Text("a"), Text("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for i, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("case %d: Compare(%v,%v) = %d, %v; want %d", i, c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(Text("a"), Int(1)); err == nil {
		t.Error("cross-type comparison accepted")
	}
}

func TestValueKeyDistinguishesTypes(t *testing.T) {
	if Int(1).Key() == Text("1").Key() {
		t.Fatal("INT 1 and TEXT '1' share a key")
	}
	if Bool(true).Key() == Text("TRUE").Key() {
		t.Fatal("BOOL TRUE and TEXT 'TRUE' share a key")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{"a", TypeInt}, Column{"A", TypeText}); err == nil {
		t.Fatal("duplicate column (case-insensitive) accepted")
	}
	if _, err := NewSchema(Column{"", TypeInt}); err == nil {
		t.Fatal("empty column name accepted")
	}
	s := mustSchema(t, Column{"id", TypeText}, Column{"n", TypeInt})
	if s.ColumnIndex("ID") != 0 || s.ColumnIndex("n") != 1 || s.ColumnIndex("x") != -1 {
		t.Fatal("ColumnIndex lookup wrong")
	}
}

func TestInsertCoercionAndArity(t *testing.T) {
	tab := NewTable("t", mustSchema(t, Column{"id", TypeText}, Column{"score", TypeFloat}))
	if err := tab.Insert(Row{Text("a"), Int(3)}); err != nil {
		t.Fatal(err)
	}
	var got Row
	tab.Scan(func(r Row) error { got = r.Clone(); return nil })
	if got[1].T != TypeFloat || got[1].F != 3 {
		t.Fatalf("INT not coerced to FLOAT: %+v", got[1])
	}
	if err := tab.Insert(Row{Text("a")}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := tab.Insert(Row{Int(1), Float(1)}); err == nil {
		t.Fatal("INT into TEXT accepted")
	}
	if err := tab.Insert(Row{Null(), Null()}); err != nil {
		t.Fatalf("NULLs rejected: %v", err)
	}
}

func TestLookupWithAndWithoutIndex(t *testing.T) {
	tab := NewTable("t", mustSchema(t, Column{"id", TypeText}, Column{"n", TypeInt}))
	for i := 0; i < 10; i++ {
		tab.Insert(Row{Text(fmt.Sprintf("k%d", i%3)), Int(int64(i))})
	}
	scanRows, err := tab.Lookup("id", Text("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if !tab.HasIndex("id") {
		t.Fatal("index not reported")
	}
	idxRows, err := tab.Lookup("id", Text("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scanRows) != len(idxRows) || len(idxRows) != 3 {
		t.Fatalf("scan found %d, index found %d, want 3", len(scanRows), len(idxRows))
	}
	if _, err := tab.Lookup("nope", Int(0)); err == nil {
		t.Fatal("lookup on missing column accepted")
	}
}

func TestIndexMaintainedAcrossInsertAndDelete(t *testing.T) {
	tab := NewTable("t", mustSchema(t, Column{"id", TypeText}))
	tab.CreateIndex("id")
	tab.Insert(Row{Text("a")})
	tab.Insert(Row{Text("a")})
	tab.Insert(Row{Text("b")})
	if rows, _ := tab.Lookup("id", Text("a")); len(rows) != 2 {
		t.Fatalf("found %d rows, want 2", len(rows))
	}
	n := tab.Delete(func(r Row) bool { return r[0].S == "a" })
	if n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if rows, _ := tab.Lookup("id", Text("a")); len(rows) != 0 {
		t.Fatalf("found %d rows after delete, want 0", len(rows))
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestEventColumn(t *testing.T) {
	tab := NewTable("c", mustSchema(t, Column{"id", TypeText}, Column{"ev", TypeEvent}))
	e := event.And(event.Basic("x"), event.Basic("y"))
	if err := tab.Insert(Row{Text("doc1"), Event(e)}); err != nil {
		t.Fatal(err)
	}
	rows, _ := tab.Lookup("id", Text("doc1"))
	if len(rows) != 1 || rows[0][1].Ev != e {
		t.Fatal("event expression not stored by reference")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := mustSchema(t, Column{"id", TypeText})
	if _, err := c.Create("T1", s); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("t1", s); err == nil {
		t.Fatal("case-insensitive duplicate accepted")
	}
	if !c.Exists("t1") {
		t.Fatal("Exists(t1) = false")
	}
	if _, err := c.Get("T1"); err != nil {
		t.Fatal(err)
	}
	c.Create("a", s)
	names := c.Names()
	if len(names) != 2 || names[0] != "T1" && names[0] != "a" {
		t.Fatalf("Names = %v", names)
	}
	if err := c.Drop("t1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("t1"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	tab := NewTable("t", mustSchema(t, Column{"n", TypeInt}))
	tab.CreateIndex("n")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tab.Insert(Row{Int(int64(g*100 + i))})
				tab.Scan(func(Row) error { return nil })
				tab.Lookup("n", Int(int64(i)))
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() != 800 {
		t.Fatalf("Len = %d, want 800", tab.Len())
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		ca, _ := Compare(Int(a), Int(b))
		cb, _ := Compare(Int(b), Int(a))
		return ca == -cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoerceIntToFloatLossless(t *testing.T) {
	f := func(i int32) bool {
		v, err := Int(int64(i)).CoerceTo(TypeFloat)
		return err == nil && v.F == float64(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
