package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema, rejecting duplicate or empty column names.
func NewSchema(cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("storage: empty column name")
		}
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return Schema{}, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		seen[lower] = true
	}
	return Schema{Columns: cols}, nil
}

// ColumnIndex returns the position of the named column (case-insensitive)
// or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// Row is one tuple; len(Row) always equals the table arity.
type Row []Value

// Clone returns a copy of the row (values are immutable, so a shallow copy
// suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory heap of rows with optional hash indexes. All methods
// are safe for concurrent use.
type Table struct {
	name   string
	schema Schema

	mu      sync.RWMutex
	rows    []Row
	indexes map[int]map[string][]int // column -> value key -> row ids
	deleted map[int]bool
	nLive   int
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		indexes: make(map[int]map[string][]int),
		deleted: make(map[int]bool),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nLive
}

// Insert appends a row after coercing each value to its column type.
func (t *Table) Insert(r Row) error {
	if len(r) != t.schema.Arity() {
		return fmt.Errorf("storage: table %s expects %d values, got %d", t.name, t.schema.Arity(), len(r))
	}
	coerced := make(Row, len(r))
	for i, v := range r {
		cv, err := v.CoerceTo(t.schema.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("storage: table %s column %s: %w", t.name, t.schema.Columns[i].Name, err)
		}
		coerced[i] = cv
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.rows)
	t.rows = append(t.rows, coerced)
	t.nLive++
	for col, idx := range t.indexes {
		key := coerced[col].Key()
		idx[key] = append(idx[key], id)
	}
	return nil
}

// CreateIndex builds a hash index on the named column; idempotent.
func (t *Table) CreateIndex(column string) error {
	col := t.schema.ColumnIndex(column)
	if col < 0 {
		return fmt.Errorf("storage: table %s has no column %q", t.name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	idx := make(map[string][]int)
	for id, r := range t.rows {
		if t.deleted[id] {
			continue
		}
		key := r[col].Key()
		idx[key] = append(idx[key], id)
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether the named column has a hash index.
func (t *Table) HasIndex(column string) bool {
	col := t.schema.ColumnIndex(column)
	if col < 0 {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[col]
	return ok
}

// Scan calls fn for every live row. The row passed to fn must not be
// retained or modified; clone it if needed. Scan takes a snapshot reference
// under the read lock, so concurrent inserts during a scan are not observed.
func (t *Table) Scan(fn func(Row) error) error {
	t.mu.RLock()
	rows := t.rows
	deleted := t.deleted
	n := len(rows)
	t.mu.RUnlock()
	for id := 0; id < n; id++ {
		if deleted[id] {
			continue
		}
		if err := fn(rows[id]); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the live rows whose column equals v, using the hash index
// if present and a scan otherwise. Returned rows are clones.
func (t *Table) Lookup(column string, v Value) ([]Row, error) {
	col := t.schema.ColumnIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("storage: table %s has no column %q", t.name, column)
	}
	t.mu.RLock()
	idx, ok := t.indexes[col]
	if ok {
		ids := idx[v.Key()]
		out := make([]Row, 0, len(ids))
		for _, id := range ids {
			if !t.deleted[id] {
				out = append(out, t.rows[id].Clone())
			}
		}
		t.mu.RUnlock()
		return out, nil
	}
	t.mu.RUnlock()
	var out []Row
	err := t.Scan(func(r Row) error {
		if Equal(r[col], v) {
			out = append(out, r.Clone())
		}
		return nil
	})
	return out, err
}

// Update rewrites every live row for which match returns true by calling
// apply on a clone; the returned row is coerced to the schema. It reports
// how many rows changed. Like Delete, it copy-on-writes the row heap: a
// concurrent lock-free Scan keeps iterating its own consistent snapshot.
func (t *Table) Update(match func(Row) bool, apply func(Row) (Row, error)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	replacement := make(map[int]Row)
	for id, r := range t.rows {
		if t.deleted[id] || !match(r) {
			continue
		}
		updated, err := apply(r.Clone())
		if err != nil {
			return 0, err
		}
		if len(updated) != t.schema.Arity() {
			return 0, fmt.Errorf("storage: update of table %s produced %d values, want %d", t.name, len(updated), t.schema.Arity())
		}
		coerced := make(Row, len(updated))
		for i, v := range updated {
			cv, err := v.CoerceTo(t.schema.Columns[i].Type)
			if err != nil {
				return 0, fmt.Errorf("storage: table %s column %s: %w", t.name, t.schema.Columns[i].Name, err)
			}
			coerced[i] = cv
		}
		replacement[id] = coerced
	}
	if len(replacement) == 0 {
		return 0, nil
	}
	rows := make([]Row, len(t.rows))
	copy(rows, t.rows)
	for id, r := range replacement {
		rows[id] = r
	}
	t.rows = rows
	t.rebuildIndexesLocked()
	return len(replacement), nil
}

// Delete removes every live row for which match returns true and reports
// how many were removed. Once tombstones outnumber live rows the heap is
// compacted, so a table that is repeatedly cleared and refilled (context
// concepts under session churn) stays bounded by its live size instead of
// accumulating its whole delete history.
func (t *Table) Delete(match func(Row) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var marked []int
	for id, r := range t.rows {
		if t.deleted[id] || !match(r) {
			continue
		}
		marked = append(marked, id)
	}
	if len(marked) == 0 {
		return 0
	}
	// Copy-on-write: Scan iterates lock-free over a snapshot reference to
	// the deleted map, so tombstones go into a fresh map rather than the
	// one a concurrent scanner may hold.
	tombs := make(map[int]bool, len(t.deleted)+len(marked))
	for id := range t.deleted {
		tombs[id] = true
	}
	for _, id := range marked {
		tombs[id] = true
	}
	t.deleted = tombs
	t.nLive -= len(marked)
	if dead := len(t.rows) - t.nLive; dead > t.nLive {
		t.compactLocked()
	}
	t.rebuildIndexesLocked()
	return len(marked)
}

// compactLocked drops tombstoned rows, renumbering the live ones in
// insertion order. Fresh slices/maps are allocated rather than filtered in
// place: Scan iterates lock-free over snapshot references to rows and
// deleted, which must stay internally consistent. Caller holds t.mu and
// rebuilds indexes afterwards.
func (t *Table) compactLocked() {
	live := make([]Row, 0, t.nLive)
	for id, r := range t.rows {
		if !t.deleted[id] {
			live = append(live, r)
		}
	}
	t.rows = live
	t.deleted = make(map[int]bool)
}

func (t *Table) rebuildIndexesLocked() {
	for col := range t.indexes {
		idx := make(map[string][]int)
		for id, r := range t.rows {
			if t.deleted[id] {
				continue
			}
			key := r[col].Key()
			idx[key] = append(idx[key], id)
		}
		t.indexes[col] = idx
	}
}

// Catalog maps table names (case-insensitive) to tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new empty table.
func (c *Catalog) Create(name string, schema Schema) (*Table, error) {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := NewTable(name, schema)
	c.tables[key] = t
	return t, nil
}

// Get returns the named table or an error.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no table %q", name)
	}
	return t, nil
}

// Exists reports whether the named table exists.
func (c *Catalog) Exists(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("storage: no table %q", name)
	}
	delete(c.tables, key)
	return nil
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}
