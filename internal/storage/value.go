// Package storage implements the tuple store underneath the embedded
// relational engine: typed values (including the paper's EVENT expression
// datatype, §5), schemas, tables with hash indexes, and a catalog. It plays
// the role PostgreSQL's storage layer played for the paper's prototype.
package storage

import (
	"fmt"
	"strconv"

	"repro/internal/event"
)

// Type is the data type of a column or value.
type Type uint8

// Column types.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
	TypeEvent // probabilistic event expression (the paper's custom datatype)
)

// String returns the SQL-facing name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	case TypeEvent:
		return "EVENT"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// TypeFromName resolves a SQL type name (case-sensitive, canonical upper
// case) to a Type.
func TypeFromName(name string) (Type, error) {
	switch name {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "STRING":
		return TypeText, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "EVENT":
		return TypeEvent, nil
	}
	return TypeNull, fmt.Errorf("storage: unknown type %q", name)
}

// Value is a dynamically typed SQL value. The zero value is NULL.
type Value struct {
	T  Type
	I  int64
	F  float64
	S  string
	B  bool
	Ev *event.Expr
}

// Constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an INT value.
func Int(i int64) Value { return Value{T: TypeInt, I: i} }

// Float returns a FLOAT value.
func Float(f float64) Value { return Value{T: TypeFloat, F: f} }

// Text returns a TEXT value.
func Text(s string) Value { return Value{T: TypeText, S: s} }

// Bool returns a BOOL value.
func Bool(b bool) Value { return Value{T: TypeBool, B: b} }

// Event returns an EVENT value wrapping the given expression; a nil
// expression yields NULL.
func Event(e *event.Expr) Value {
	if e == nil {
		return Value{}
	}
	return Value{T: TypeEvent, Ev: e}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.T {
	case TypeInt:
		return float64(v.I), nil
	case TypeFloat:
		return v.F, nil
	}
	return 0, fmt.Errorf("storage: %s is not numeric", v.T)
}

// Truth reports the boolean value; NULL is false under SQL's WHERE
// semantics, with ok=false signalling "unknown".
func (v Value) Truth() (val, ok bool) {
	switch v.T {
	case TypeBool:
		return v.B, true
	case TypeNull:
		return false, false
	}
	return false, false
}

// String renders the value for display and for use in hash keys.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case TypeEvent:
		return v.Ev.String()
	}
	return fmt.Sprintf("<invalid %d>", v.T)
}

// Key returns a string usable as a map key that is unique per (type, value).
func (v Value) Key() string {
	return v.T.String() + "\x00" + v.String()
}

// Compare orders two values: NULL sorts first; numeric values compare
// numerically across INT/FLOAT; otherwise values must have the same type.
// EVENT values are ordered by their canonical string (deterministic, not
// semantically meaningful).
func Compare(a, b Value) (int, error) {
	if a.T == TypeNull || b.T == TypeNull {
		switch {
		case a.T == TypeNull && b.T == TypeNull:
			return 0, nil
		case a.T == TypeNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if isNumeric(a.T) && isNumeric(b.T) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.T != b.T {
		return 0, fmt.Errorf("storage: cannot compare %s with %s", a.T, b.T)
	}
	switch a.T {
	case TypeText:
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		}
		return 0, nil
	case TypeBool:
		switch {
		case !a.B && b.B:
			return -1, nil
		case a.B && !b.B:
			return 1, nil
		}
		return 0, nil
	case TypeEvent:
		as, bs := a.Ev.String(), b.Ev.String()
		switch {
		case as < bs:
			return -1, nil
		case as > bs:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("storage: cannot compare values of type %s", a.T)
}

func isNumeric(t Type) bool { return t == TypeInt || t == TypeFloat }

// Equal reports value equality under Compare semantics (NULL equals NULL
// here; SQL three-valued logic is applied by the expression evaluator, not
// by storage).
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// CoerceTo converts v to column type t where the conversion is lossless
// (INT→FLOAT, NULL→anything); it rejects anything else.
func (v Value) CoerceTo(t Type) (Value, error) {
	if v.T == t || v.T == TypeNull {
		return v, nil
	}
	if v.T == TypeInt && t == TypeFloat {
		return Float(float64(v.I)), nil
	}
	return Value{}, fmt.Errorf("storage: cannot store %s into %s column", v.T, t)
}
