package situated

import (
	"testing"
	"testing/quick"
)

func tvTuples() []Tuple {
	return []Tuple{
		{ID: "oprah", Attrs: map[string]string{"genre": "human-interest"}},
		{ID: "bbc", Attrs: map[string]string{"subject": "news"}},
		{ID: "c5", Attrs: map[string]string{"genre": "human-interest", "subject": "news"}},
		{ID: "mpfs", Attrs: map[string]string{"genre": "comedy"}},
	}
}

func TestPos(t *testing.T) {
	p := Pos{Attr: "genre", Values: []string{"human-interest"}}
	ts := tvTuples()
	if !p.Better(ts[0], ts[3]) {
		t.Fatal("POS should prefer matching tuple")
	}
	if p.Better(ts[0], ts[2]) {
		t.Fatal("two matching tuples are incomparable")
	}
	if p.Better(ts[3], ts[0]) {
		t.Fatal("non-matching preferred")
	}
}

func TestNeg(t *testing.T) {
	n := Neg{Attr: "genre", Values: []string{"comedy"}}
	ts := tvTuples()
	if !n.Better(ts[0], ts[3]) {
		t.Fatal("NEG should dis-prefer comedy")
	}
	if n.Better(ts[3], ts[0]) {
		t.Fatal("NEG inverted")
	}
}

func TestParetoAndPrioritized(t *testing.T) {
	hi := Pos{Attr: "genre", Values: []string{"human-interest"}}
	news := Pos{Attr: "subject", Values: []string{"news"}}
	ts := tvTuples()
	pareto := Pareto{Left: hi, Right: news}
	// c5 matches both: dominates everything else.
	if !pareto.Better(ts[2], ts[0]) || !pareto.Better(ts[2], ts[1]) || !pareto.Better(ts[2], ts[3]) {
		t.Fatal("c5 should Pareto-dominate")
	}
	// oprah vs bbc: each better in one dimension → incomparable.
	if pareto.Better(ts[0], ts[1]) || pareto.Better(ts[1], ts[0]) {
		t.Fatal("oprah and bbc should be incomparable")
	}
	prio := Prioritized{First: news, Then: hi}
	// bbc beats oprah under news-first priority.
	if !prio.Better(ts[1], ts[0]) {
		t.Fatal("prioritized news should put bbc over oprah")
	}
	// among news programs, hi breaks the tie: c5 over bbc.
	if !prio.Better(ts[2], ts[1]) {
		t.Fatal("tie break failed")
	}
}

func TestBMO(t *testing.T) {
	hi := Pos{Attr: "genre", Values: []string{"human-interest"}}
	news := Pos{Attr: "subject", Values: []string{"news"}}
	ts := tvTuples()
	got := BMO(ts, Pareto{Left: hi, Right: news})
	if len(got) != 1 || got[0].ID != "c5" {
		t.Fatalf("BMO = %v", got)
	}
	// Under POS(genre) alone, both human-interest programs survive.
	got = BMO(ts, hi)
	if len(got) != 2 || got[0].ID != "c5" || got[1].ID != "oprah" {
		t.Fatalf("BMO = %v", got)
	}
}

func TestBMONeverEmptyOnNonEmptyInput(t *testing.T) {
	// BMO of a strict partial order is never empty — the classic guarantee.
	f := func(seed uint8) bool {
		p := Pos{Attr: "genre", Values: []string{"x"}}
		ts := tvTuples()
		// rotate to vary input order
		k := int(seed) % len(ts)
		ts = append(ts[k:], ts[:k]...)
		return len(BMO(ts, p)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSituatedRepository(t *testing.T) {
	repo := &Repository{}
	repo.Add(SituatedPreference{
		Situation: Situation{Name: "weekend", Holds: func(ctx map[string]string) bool {
			return ctx["day"] == "saturday" || ctx["day"] == "sunday"
		}},
		Preference: Pos{Attr: "genre", Values: []string{"human-interest"}},
	})
	repo.Add(SituatedPreference{
		Situation: Situation{Name: "breakfast", Holds: func(ctx map[string]string) bool {
			return ctx["meal"] == "breakfast"
		}},
		Preference: Pos{Attr: "subject", Values: []string{"news"}},
	})
	if repo.Len() != 2 {
		t.Fatalf("len = %d", repo.Len())
	}
	ts := tvTuples()
	// Saturday breakfast: both preferences active (Pareto): c5 wins.
	got := repo.Query(map[string]string{"day": "saturday", "meal": "breakfast"}, ts)
	if len(got) != 1 || got[0].ID != "c5" {
		t.Fatalf("query = %v", got)
	}
	// Weekday dinner: nothing applies → all tuples.
	got = repo.Query(map[string]string{"day": "monday"}, ts)
	if len(got) != 4 {
		t.Fatalf("query = %v", got)
	}
	// Weekend only: human-interest BMO.
	got = repo.Query(map[string]string{"day": "sunday"}, ts)
	if len(got) != 2 {
		t.Fatalf("query = %v", got)
	}
}

func TestStrictPartialOrderProperties(t *testing.T) {
	// Irreflexivity and asymmetry of every constructor on sample data.
	ts := tvTuples()
	prefs := []Preference{
		Pos{Attr: "genre", Values: []string{"human-interest"}},
		Neg{Attr: "genre", Values: []string{"comedy"}},
		Pareto{Pos{Attr: "genre", Values: []string{"human-interest"}}, Pos{Attr: "subject", Values: []string{"news"}}},
		Prioritized{Pos{Attr: "subject", Values: []string{"news"}}, Pos{Attr: "genre", Values: []string{"human-interest"}}},
	}
	for _, p := range prefs {
		for _, a := range ts {
			if p.Better(a, a) {
				t.Fatalf("%s not irreflexive", p)
			}
			for _, b := range ts {
				if p.Better(a, b) && p.Better(b, a) {
					t.Fatalf("%s not asymmetric on %s,%s", p, a.ID, b.ID)
				}
			}
		}
	}
}
