// Package situated implements the closest related work the paper compares
// against conceptually (§1.1): Holland & Kießling's *situated preferences*
// (ER 2004), built on Kießling's preference constructors (VLDB 2002).
// Preferences here are strict partial orders over tuples, not scores; a
// situation is linked to a preference, and queries return the Best Matches
// Only (BMO) set — the maxima of the order among the candidates.
//
// The paper argues its score-based model can express these preferences via
// a score function; this package exists so benchmarks can compare the
// qualitative BMO answer against the probabilistic ranking.
package situated

import (
	"fmt"
	"sort"
)

// Tuple is a candidate item described by attribute values.
type Tuple struct {
	ID    string
	Attrs map[string]string
}

// Preference is a strict partial order: Better(a, b) means a is strictly
// preferred to b.
type Preference interface {
	Better(a, b Tuple) bool
	String() string
}

// Pos prefers tuples whose attribute takes one of the desired values
// (Kießling's POS constructor).
type Pos struct {
	Attr   string
	Values []string
}

// Better implements Preference.
func (p Pos) Better(a, b Tuple) bool {
	return p.matches(a) && !p.matches(b)
}

func (p Pos) matches(t Tuple) bool {
	v, ok := t.Attrs[p.Attr]
	if !ok {
		return false
	}
	for _, want := range p.Values {
		if v == want {
			return true
		}
	}
	return false
}

// String implements Preference.
func (p Pos) String() string { return fmt.Sprintf("POS(%s, %v)", p.Attr, p.Values) }

// Neg dis-prefers tuples whose attribute takes one of the listed values
// (Kießling's NEG constructor).
type Neg struct {
	Attr   string
	Values []string
}

// Better implements Preference.
func (n Neg) Better(a, b Tuple) bool {
	bad := Pos{Attr: n.Attr, Values: n.Values}
	return !bad.matches(a) && bad.matches(b)
}

// String implements Preference.
func (n Neg) String() string { return fmt.Sprintf("NEG(%s, %v)", n.Attr, n.Values) }

// Pareto combines two preferences with equal importance (Kießling's ⊗):
// a is better than b iff it is at least as good in both and strictly better
// in one. With strict partial orders "at least as good" is "better or
// incomparable-equal"; we use the standard Pareto lift.
type Pareto struct {
	Left, Right Preference
}

// Better implements Preference.
func (p Pareto) Better(a, b Tuple) bool {
	lBetter := p.Left.Better(a, b)
	lWorse := p.Left.Better(b, a)
	rBetter := p.Right.Better(a, b)
	rWorse := p.Right.Better(b, a)
	return (lBetter && !rWorse) || (rBetter && !lWorse)
}

// String implements Preference.
func (p Pareto) String() string { return fmt.Sprintf("(%s ⊗ %s)", p.Left, p.Right) }

// Prioritized combines two preferences lexicographically (Kießling's &):
// the left preference dominates; the right breaks ties.
type Prioritized struct {
	First, Then Preference
}

// Better implements Preference.
func (p Prioritized) Better(a, b Tuple) bool {
	if p.First.Better(a, b) {
		return true
	}
	if p.First.Better(b, a) {
		return false
	}
	return p.Then.Better(a, b)
}

// String implements Preference.
func (p Prioritized) String() string { return fmt.Sprintf("(%s & %s)", p.First, p.Then) }

// BMO returns the Best Matches Only set: tuples not dominated by any other
// candidate, in ID order. This is the answer semantics of preference
// queries in the Kießling framework.
func BMO(tuples []Tuple, pref Preference) []Tuple {
	var out []Tuple
	for i, t := range tuples {
		dominated := false
		for j, other := range tuples {
			if i != j && pref.Better(other, t) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Situation is a named predicate over context attributes (the ER-based
// situation model of Holland & Kießling, reduced to its query-time
// essence).
type Situation struct {
	Name  string
	Holds func(ctx map[string]string) bool
}

// SituatedPreference links a situation to the preference that applies in
// it.
type SituatedPreference struct {
	Situation  Situation
	Preference Preference
}

// Repository is an ordered list of situated preferences.
type Repository struct {
	entries []SituatedPreference
}

// Add appends a situated preference.
func (r *Repository) Add(sp SituatedPreference) { r.entries = append(r.entries, sp) }

// Len returns the number of entries.
func (r *Repository) Len() int { return len(r.entries) }

// Active returns the preferences whose situations hold in the given
// context, combined with Pareto composition (equal importance), or nil if
// none applies.
func (r *Repository) Active(ctx map[string]string) Preference {
	var combined Preference
	for _, sp := range r.entries {
		if !sp.Situation.Holds(ctx) {
			continue
		}
		if combined == nil {
			combined = sp.Preference
		} else {
			combined = Pareto{Left: combined, Right: sp.Preference}
		}
	}
	return combined
}

// Query evaluates the situated-preference query: BMO under the active
// preference, or all tuples when no preference applies (the "empty
// preference" returns everything, as in the BMO semantics).
func (r *Repository) Query(ctx map[string]string, tuples []Tuple) []Tuple {
	pref := r.Active(ctx)
	if pref == nil {
		out := make([]Tuple, len(tuples))
		copy(out, tuples)
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	return BMO(tuples, pref)
}
