package main

import (
	"strings"
	"testing"
)

const baseline = `
goos: linux
BenchmarkServeRankCached/cached-8     1000000    600 ns/op
BenchmarkServeRankCached/cached-8     1000000    610 ns/op
BenchmarkServeRankCached/cached-8     1000000   9999 ns/op
BenchmarkServeRankConcurrent/sessions=4-8   50000   2000 ns/op
BenchmarkServeRankConcurrent/sessions=4-8   50000   2100 ns/op
BenchmarkGone-8   1   100 ns/op
PASS
`

func TestCompareWithinBudget(t *testing.T) {
	candidate := `
BenchmarkServeRankCached/cached-8     1000000    650 ns/op
BenchmarkServeRankCached/cached-8     1000000    640 ns/op
BenchmarkServeRankConcurrent/sessions=4-8   50000   2050 ns/op
BenchmarkFresh-8   1   1 ns/op
`
	rep, err := Compare([]byte(baseline), []byte(candidate), 0.20, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("regressions = %v, want none", rep.Regressions)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(rep.Benchmarks))
	}
	// The baseline median of cached is 610 (the 9999 outlier must not
	// drag the median); 645/610 ≈ +5.7%.
	for _, b := range rep.Benchmarks {
		if b.Name == "BenchmarkServeRankCached/cached-8" {
			if b.OldNsOp != 610 {
				t.Fatalf("baseline median = %g, want 610 (outlier-robust)", b.OldNsOp)
			}
			if b.Delta < 0.05 || b.Delta > 0.07 {
				t.Fatalf("delta = %g, want ≈0.057", b.Delta)
			}
		}
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "BenchmarkGone-8" {
		t.Fatalf("only_old = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "BenchmarkFresh-8" {
		t.Fatalf("only_new = %v", rep.OnlyNew)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	candidate := `
BenchmarkServeRankCached/cached-8     1000000    800 ns/op
BenchmarkServeRankConcurrent/sessions=4-8   50000   2050 ns/op
`
	rep, err := Compare([]byte(baseline), []byte(candidate), 0.20, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0] != "BenchmarkServeRankCached/cached-8" {
		t.Fatalf("regressions = %v, want the cached benchmark (800 vs 610 = +31%%)", rep.Regressions)
	}
}

func TestCompareScientificNotationAndEmpty(t *testing.T) {
	if _, err := Compare([]byte("no benches here"), []byte(""), 0.2, -1, nil); err == nil {
		t.Fatal("empty inputs accepted")
	}
	rep, err := Compare(
		[]byte("BenchmarkBig-8  1  1.5e+06 ns/op"),
		[]byte("BenchmarkBig-8  1  1.6e+06 ns/op"), 0.2, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].OldNsOp != 1.5e6 {
		t.Fatalf("scientific notation parsed as %+v", rep.Benchmarks)
	}
}

// --- -benchmem column parsing and the alloc gates --------------------------

const oldMemBench = `
goos: linux
BenchmarkRankFast-8    1000    100.0 ns/op    64 B/op    2 allocs/op
BenchmarkRankFast-8    1000    110.0 ns/op    64 B/op    2 allocs/op
BenchmarkRankFast-8    1000    120.0 ns/op    64 B/op    2 allocs/op
BenchmarkNoMem-8       1000    50.0 ns/op
BenchmarkZero-8        1000    10.0 ns/op    0 B/op    0 allocs/op
`

const newMemBench = `
BenchmarkRankFast-8    1000    115.0 ns/op    96 B/op    3 allocs/op
BenchmarkRankFast-8    1000    112.0 ns/op    96 B/op    3 allocs/op
BenchmarkRankFast-8    1000    118.0 ns/op    96 B/op    3 allocs/op
BenchmarkNoMem-8       1000    51.0 ns/op
BenchmarkZero-8        1000    11.0 ns/op    0 B/op    0 allocs/op
`

func result(t *testing.T, rep Report, name string) Result {
	t.Helper()
	for _, r := range rep.Benchmarks {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("benchmark %s missing from report", name)
	return Result{}
}

func TestCompareParsesMemColumns(t *testing.T) {
	rep, err := Compare([]byte(oldMemBench), []byte(newMemBench), 0.20, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := result(t, rep, "BenchmarkRankFast-8")
	if r.OldNsOp != 110 || r.NewNsOp != 115 {
		t.Fatalf("ns/op medians = %v, %v; want 110, 115", r.OldNsOp, r.NewNsOp)
	}
	if r.OldAllocsOp == nil || *r.OldAllocsOp != 2 || r.NewAllocsOp == nil || *r.NewAllocsOp != 3 {
		t.Fatalf("allocs/op medians = %v, %v; want 2, 3", r.OldAllocsOp, r.NewAllocsOp)
	}
	if r.AllocRegression {
		t.Fatal("alloc gate fired while disabled")
	}
	if nm := result(t, rep, "BenchmarkNoMem-8"); nm.OldAllocsOp != nil {
		t.Fatal("benchmark without -benchmem columns got alloc medians")
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", rep.Regressions)
	}
}

func TestCompareAllocThreshold(t *testing.T) {
	rep, err := Compare([]byte(oldMemBench), []byte(newMemBench), 0.20, 0.10, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := result(t, rep, "BenchmarkRankFast-8")
	if !r.AllocRegression {
		t.Fatal("2 → 3 allocs/op should exceed a 10% alloc threshold")
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0] != "BenchmarkRankFast-8" {
		t.Fatalf("regressions = %v", rep.Regressions)
	}
	// A benchmark missing memstats on either side must not fire the gate.
	if r := result(t, rep, "BenchmarkNoMem-8"); r.AllocRegression {
		t.Fatal("alloc gate fired without -benchmem columns")
	}
	// Zero-to-zero stays clean; zero-to-nonzero regresses.
	if r := result(t, rep, "BenchmarkZero-8"); r.AllocRegression {
		t.Fatal("0 → 0 allocs/op flagged")
	}
	grew := strings.Replace(newMemBench, "BenchmarkZero-8        1000    11.0 ns/op    0 B/op    0 allocs/op",
		"BenchmarkZero-8        1000    11.0 ns/op    16 B/op    1 allocs/op", 1)
	rep, err = Compare([]byte(oldMemBench), []byte(grew), 0.20, 0.10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := result(t, rep, "BenchmarkZero-8"); !r.AllocRegression {
		t.Fatal("0 → 1 allocs/op not flagged")
	}
}

func TestCompareMaxAllocsCaps(t *testing.T) {
	caps := map[string]float64{
		"BenchmarkZero":     0, // prefix form, no GOMAXPROCS suffix
		"BenchmarkRankFast": 2,
	}
	rep, err := Compare(nil, []byte(newMemBench), 0.20, -1, caps)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CapResult{}
	for _, c := range rep.AllocCaps {
		byName[c.Name] = c
	}
	if c := byName["BenchmarkZero"]; c.Violation || c.Missing || c.AllocsOp != 0 {
		t.Fatalf("zero cap: %+v", c)
	}
	if c := byName["BenchmarkRankFast"]; !c.Violation || c.AllocsOp != 3 {
		t.Fatalf("rankfast cap: %+v", c)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0] != "BenchmarkRankFast" {
		t.Fatalf("regressions = %v", rep.Regressions)
	}
}

func TestCompareMissingCapFails(t *testing.T) {
	rep, err := Compare(nil, []byte(newMemBench), 0.20, -1, map[string]float64{"BenchmarkVanished": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AllocCaps) != 1 || !rep.AllocCaps[0].Missing {
		t.Fatalf("alloc caps = %+v", rep.AllocCaps)
	}
	if len(rep.Regressions) != 1 {
		t.Fatalf("a vanished capped benchmark must fail the check; regressions = %v", rep.Regressions)
	}
	// A cap over a benchmark that ran without -benchmem is equally missing.
	rep, err = Compare(nil, []byte(newMemBench), 0.20, -1, map[string]float64{"BenchmarkNoMem": 0})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllocCaps[0].Missing || len(rep.Regressions) != 1 {
		t.Fatalf("cap over mem-less benchmark: %+v, regressions %v", rep.AllocCaps[0], rep.Regressions)
	}
}

func TestParseCaps(t *testing.T) {
	caps, err := parseCaps("BenchmarkPlanScoreLargeCatalog/warm/candidates=1000=0, BenchmarkServeRankCached=24")
	if err != nil {
		t.Fatal(err)
	}
	if caps["BenchmarkPlanScoreLargeCatalog/warm/candidates=1000"] != 0 {
		t.Fatalf("caps = %v", caps)
	}
	if caps["BenchmarkServeRankCached"] != 24 {
		t.Fatalf("caps = %v", caps)
	}
	for _, bad := range []string{"noequals", "=5", "name=", "name=-1", "name=x"} {
		if _, err := parseCaps(bad); err == nil {
			t.Fatalf("parseCaps(%q) accepted", bad)
		}
	}
}
