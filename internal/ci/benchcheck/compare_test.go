package main

import "testing"

const baseline = `
goos: linux
BenchmarkServeRankCached/cached-8     1000000    600 ns/op
BenchmarkServeRankCached/cached-8     1000000    610 ns/op
BenchmarkServeRankCached/cached-8     1000000   9999 ns/op
BenchmarkServeRankConcurrent/sessions=4-8   50000   2000 ns/op
BenchmarkServeRankConcurrent/sessions=4-8   50000   2100 ns/op
BenchmarkGone-8   1   100 ns/op
PASS
`

func TestCompareWithinBudget(t *testing.T) {
	candidate := `
BenchmarkServeRankCached/cached-8     1000000    650 ns/op
BenchmarkServeRankCached/cached-8     1000000    640 ns/op
BenchmarkServeRankConcurrent/sessions=4-8   50000   2050 ns/op
BenchmarkFresh-8   1   1 ns/op
`
	rep, err := Compare([]byte(baseline), []byte(candidate), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("regressions = %v, want none", rep.Regressions)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(rep.Benchmarks))
	}
	// The baseline median of cached is 610 (the 9999 outlier must not
	// drag the median); 645/610 ≈ +5.7%.
	for _, b := range rep.Benchmarks {
		if b.Name == "BenchmarkServeRankCached/cached-8" {
			if b.OldNsOp != 610 {
				t.Fatalf("baseline median = %g, want 610 (outlier-robust)", b.OldNsOp)
			}
			if b.Delta < 0.05 || b.Delta > 0.07 {
				t.Fatalf("delta = %g, want ≈0.057", b.Delta)
			}
		}
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "BenchmarkGone-8" {
		t.Fatalf("only_old = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "BenchmarkFresh-8" {
		t.Fatalf("only_new = %v", rep.OnlyNew)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	candidate := `
BenchmarkServeRankCached/cached-8     1000000    800 ns/op
BenchmarkServeRankConcurrent/sessions=4-8   50000   2050 ns/op
`
	rep, err := Compare([]byte(baseline), []byte(candidate), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0] != "BenchmarkServeRankCached/cached-8" {
		t.Fatalf("regressions = %v, want the cached benchmark (800 vs 610 = +31%%)", rep.Regressions)
	}
}

func TestCompareScientificNotationAndEmpty(t *testing.T) {
	if _, err := Compare([]byte("no benches here"), []byte(""), 0.2); err == nil {
		t.Fatal("empty inputs accepted")
	}
	rep, err := Compare(
		[]byte("BenchmarkBig-8  1  1.5e+06 ns/op"),
		[]byte("BenchmarkBig-8  1  1.6e+06 ns/op"), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].OldNsOp != 1.5e6 {
		t.Fatalf("scientific notation parsed as %+v", rep.Benchmarks)
	}
}
