// Command benchcheck compares two `go test -bench` output files and fails
// (exit 1) when any benchmark regressed beyond a threshold. CI's
// bench-regression jobs run it next to benchstat: benchstat renders the
// human-readable comparison, benchcheck is the machine gate — it takes the
// per-benchmark median over the -count repetitions (robust against one
// noisy run, no statistics dependency) and emits a JSON report that the
// workflow uploads as the BENCH_*.json artifacts.
//
// Usage:
//
//	benchcheck -old main.txt -new pr.txt [-threshold 0.20] [-json out.json]
//	benchcheck -old main.txt -new pr.txt -alloc-threshold 0
//	benchcheck -new pr.txt -max-allocs 'BenchmarkPlanScoreLargeCatalog/warm/candidates=1000=0'
//
// With -benchmem output on both sides, -alloc-threshold gates the median
// allocs/op growth the same way -threshold gates ns/op (negative, the
// default, disables it; benchmarks lacking memory columns on either side
// are skipped). -max-allocs imposes absolute allocs/op ceilings on the
// candidate alone — 'name=cap,name=cap', names may omit the -N GOMAXPROCS
// suffix — so a zero-allocation contract holds even with no baseline;
// with -max-allocs, -old is optional. A cap whose benchmark is missing
// (or ran without -benchmem) fails the check.
//
// Benchmarks present in only one file are reported but never fail the
// check (new benchmarks have no baseline; deleted ones have no new value).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	var (
		oldPath        = flag.String("old", "", "baseline bench output (main branch); optional with -max-allocs")
		newPath        = flag.String("new", "", "candidate bench output (PR branch)")
		threshold      = flag.Float64("threshold", 0.20, "maximum tolerated fractional ns/op increase")
		allocThreshold = flag.Float64("alloc-threshold", -1, "maximum tolerated fractional allocs/op increase (negative disables)")
		maxAllocs      = flag.String("max-allocs", "", "absolute allocs/op ceilings on the candidate: 'name=cap,name=cap'")
		jsonPath       = flag.String("json", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if *newPath == "" || (*oldPath == "" && *maxAllocs == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: need -new, and -old unless -max-allocs is given")
		os.Exit(2)
	}
	caps, err := parseCaps(*maxAllocs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	var oldData []byte
	if *oldPath != "" {
		oldData, err = os.ReadFile(*oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
	}
	newData, err := os.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	report, err := Compare(oldData, newData, *threshold, *allocThreshold, caps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	out = append(out, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(out)
	}
	for _, b := range report.Benchmarks {
		mark := " "
		if b.Regression || b.AllocRegression {
			mark = "!"
		}
		line := fmt.Sprintf("%s %-60s %12.0f → %12.0f ns/op (%+.1f%%)",
			mark, b.Name, b.OldNsOp, b.NewNsOp, 100*b.Delta)
		if b.OldAllocsOp != nil && b.NewAllocsOp != nil {
			line += fmt.Sprintf("   %.0f → %.0f allocs/op", *b.OldAllocsOp, *b.NewAllocsOp)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	for _, c := range report.AllocCaps {
		switch {
		case c.Missing:
			fmt.Fprintf(os.Stderr, "! %-60s no -benchmem sample for cap %.0f allocs/op\n", c.Name, c.Cap)
		case c.Violation:
			fmt.Fprintf(os.Stderr, "! %-60s %.0f allocs/op exceeds cap %.0f\n", c.Name, c.AllocsOp, c.Cap)
		default:
			fmt.Fprintf(os.Stderr, "  %-60s %.0f allocs/op within cap %.0f\n", c.Name, c.AllocsOp, c.Cap)
		}
	}
	if n := len(report.Regressions); n > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d benchmark(s) regressed or broke an alloc cap: %v\n",
			n, report.Regressions)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchcheck: %d benchmark(s) within budget (%d alloc cap(s) held)\n",
		len(report.Benchmarks), len(report.AllocCaps))
}

// parseCaps parses the -max-allocs value: comma-separated name=cap pairs.
func parseCaps(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		// The cap value follows the *last* '=': benchmark names carry
		// '=' themselves (sub-bench labels like candidates=1000).
		i := strings.LastIndexByte(part, '=')
		if i <= 0 || i == len(part)-1 {
			return nil, fmt.Errorf("bad -max-allocs entry %q (want name=cap)", part)
		}
		ceiling, err := strconv.ParseFloat(part[i+1:], 64)
		if err != nil || ceiling < 0 {
			return nil, fmt.Errorf("bad -max-allocs cap in %q", part)
		}
		out[part[:i]] = ceiling
	}
	return out, nil
}
