// Command benchcheck compares two `go test -bench` output files and fails
// (exit 1) when any benchmark regressed beyond a threshold. CI's
// bench-regression job runs it next to benchstat: benchstat renders the
// human-readable comparison, benchcheck is the machine gate — it takes the
// per-benchmark median ns/op over the -count repetitions (robust against
// one noisy run, no statistics dependency) and emits a JSON report that
// the workflow uploads as the BENCH_serve.json artifact.
//
// Usage:
//
//	benchcheck -old main.txt -new pr.txt [-threshold 0.20] [-json out.json]
//
// Benchmarks present in only one file are reported but never fail the
// check (new benchmarks have no baseline; deleted ones have no new value).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline bench output (main branch)")
		newPath   = flag.String("new", "", "candidate bench output (PR branch)")
		threshold = flag.Float64("threshold", 0.20, "maximum tolerated fractional ns/op increase")
		jsonPath  = flag.String("json", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: need -old and -new")
		os.Exit(2)
	}
	oldData, err := os.ReadFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	newData, err := os.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	report, err := Compare(oldData, newData, *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	out = append(out, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(out)
	}
	for _, b := range report.Benchmarks {
		mark := " "
		if b.Regression {
			mark = "!"
		}
		fmt.Fprintf(os.Stderr, "%s %-60s %12.0f → %12.0f ns/op (%+.1f%%)\n",
			mark, b.Name, b.OldNsOp, b.NewNsOp, 100*b.Delta)
	}
	if n := len(report.Regressions); n > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d benchmark(s) regressed more than %.0f%%: %v\n",
			n, 100**threshold, report.Regressions)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchcheck: %d benchmark(s) within the %.0f%% budget\n",
		len(report.Benchmarks), 100**threshold)
}
