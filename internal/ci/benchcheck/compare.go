package main

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkServeRankCached/cached-8   1964382   610.8 ns/op   96 B/op   3 allocs/op
//
// The B/op + allocs/op tail is present only under -benchmem; the alloc
// gates silently skip benchmarks that lack it, so the ns/op gate keeps
// working against old baselines taken without -benchmem.
// The trailing -N is the GOMAXPROCS suffix; both files come from the same
// machine in CI, so names compare equal including it.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// Report is the JSON shape of one comparison (the BENCH_serve.json /
// BENCH_allocs.json artifacts).
type Report struct {
	Threshold float64 `json:"threshold"`
	// AllocThreshold mirrors -alloc-threshold; negative when the
	// fractional allocs/op gate is disabled.
	AllocThreshold float64  `json:"alloc_threshold"`
	Benchmarks     []Result `json:"benchmarks"`
	// OnlyOld / OnlyNew list benchmarks without a counterpart; they are
	// informational and never fail the check.
	OnlyOld     []string `json:"only_old,omitempty"`
	OnlyNew     []string `json:"only_new,omitempty"`
	Regressions []string `json:"regressions"`
	// AllocCaps records the -max-allocs absolute checks against the
	// candidate medians; violations also land in Regressions.
	AllocCaps []CapResult `json:"alloc_caps,omitempty"`
}

// Result compares one benchmark's median ns/op — and, when both runs
// carry -benchmem columns, median allocs/op and B/op — across the two
// files.
type Result struct {
	Name       string  `json:"name"`
	OldNsOp    float64 `json:"old_ns_op"`
	NewNsOp    float64 `json:"new_ns_op"`
	Delta      float64 `json:"delta"` // (new-old)/old; positive = slower
	Regression bool    `json:"regression"`

	OldAllocsOp *float64 `json:"old_allocs_op,omitempty"`
	NewAllocsOp *float64 `json:"new_allocs_op,omitempty"`
	OldBytesOp  *float64 `json:"old_b_op,omitempty"`
	NewBytesOp  *float64 `json:"new_b_op,omitempty"`
	// AllocDelta is (new-old)/old allocs/op; an old median of zero makes
	// any new allocation an automatic regression (delta reported as +Inf
	// would not survive JSON, so it is clamped to the new count).
	AllocDelta      float64 `json:"alloc_delta,omitempty"`
	AllocRegression bool    `json:"alloc_regression,omitempty"`
}

// CapResult is one -max-allocs absolute check: the candidate's median
// allocs/op against a hard cap, no baseline needed.
type CapResult struct {
	Name      string  `json:"name"`
	Cap       float64 `json:"cap"`
	AllocsOp  float64 `json:"allocs_op"`
	Missing   bool    `json:"missing,omitempty"` // no -benchmem sample matched the cap name
	Violation bool    `json:"violation"`
}

// metrics holds one benchmark's medians over its -count repetitions.
type metrics struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

// Compare parses the two bench outputs and flags every benchmark whose
// median ns/op grew by more than threshold, or — when allocThreshold is
// non-negative and both runs carry -benchmem columns — whose median
// allocs/op grew by more than allocThreshold. caps maps benchmark names
// (GOMAXPROCS suffix optional) to hard allocs/op ceilings checked against
// the candidate alone; with caps, oldData may be nil and the comparison
// section is skipped.
func Compare(oldData, newData []byte, threshold, allocThreshold float64, caps map[string]float64) (Report, error) {
	newMed, err := medians(newData)
	if err != nil {
		return Report{}, fmt.Errorf("candidate: %w", err)
	}
	rep := Report{Threshold: threshold, AllocThreshold: allocThreshold, Regressions: []string{}}

	if oldData != nil {
		oldMed, err := medians(oldData)
		if err != nil {
			return Report{}, fmt.Errorf("baseline: %w", err)
		}
		if len(oldMed) == 0 && len(newMed) == 0 {
			return Report{}, fmt.Errorf("no benchmark results in either file")
		}
		for _, name := range sortedKeys(oldMed) {
			if _, ok := newMed[name]; !ok {
				rep.OnlyOld = append(rep.OnlyOld, name)
			}
		}
		for _, name := range sortedKeys(newMed) {
			old, ok := oldMed[name]
			if !ok {
				rep.OnlyNew = append(rep.OnlyNew, name)
				continue
			}
			nw := newMed[name]
			r := Result{Name: name, OldNsOp: old.ns, NewNsOp: nw.ns}
			if old.ns > 0 {
				r.Delta = (r.NewNsOp - old.ns) / old.ns
			}
			r.Regression = r.Delta > threshold
			if old.hasMem && nw.hasMem {
				oa, na, ob, nb := old.allocs, nw.allocs, old.bytes, nw.bytes
				r.OldAllocsOp, r.NewAllocsOp = &oa, &na
				r.OldBytesOp, r.NewBytesOp = &ob, &nb
				if oa > 0 {
					r.AllocDelta = (na - oa) / oa
				} else if na > 0 {
					r.AllocDelta = na
				}
				if allocThreshold >= 0 {
					r.AllocRegression = r.AllocDelta > allocThreshold
				}
			}
			if r.Regression || r.AllocRegression {
				rep.Regressions = append(rep.Regressions, name)
			}
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	} else if len(newMed) == 0 {
		return Report{}, fmt.Errorf("no benchmark results in the candidate file")
	}

	for _, name := range sortedCapKeys(caps) {
		cr := CapResult{Name: name, Cap: caps[name], Missing: true}
		for _, have := range sortedKeys(newMed) {
			// Cap names may omit the -N GOMAXPROCS suffix.
			if have != name && !strings.HasPrefix(have, name+"-") {
				continue
			}
			m := newMed[have]
			if !m.hasMem {
				continue
			}
			cr.Missing = false
			if m.allocs > cr.AllocsOp {
				cr.AllocsOp = m.allocs
			}
			if m.allocs > cr.Cap {
				cr.Violation = true
			}
		}
		if cr.Violation || cr.Missing {
			// A cap whose benchmark vanished (or ran without -benchmem)
			// must fail too: a silently skipped gate is not a gate.
			rep.Regressions = append(rep.Regressions, name)
		}
		rep.AllocCaps = append(rep.AllocCaps, cr)
	}
	return rep, nil
}

// medians collects each benchmark's median ns/op (and allocs/B per op
// when every sample carries -benchmem columns) over its -count
// repetitions.
func medians(data []byte) (map[string]metrics, error) {
	type sample struct{ ns, bytes, allocs []float64 }
	samples := make(map[string]*sample)
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		s := samples[m[1]]
		if s == nil {
			s = &sample{}
			samples[m[1]] = s
		}
		s.ns = append(s.ns, ns)
		if m[3] != "" {
			b, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
			}
			a, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			s.bytes = append(s.bytes, b)
			s.allocs = append(s.allocs, a)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]metrics, len(samples))
	for name, s := range samples {
		m := metrics{ns: median(s.ns)}
		if len(s.allocs) == len(s.ns) && len(s.ns) > 0 {
			m.hasMem = true
			m.bytes = median(s.bytes)
			m.allocs = median(s.allocs)
		}
		out[name] = m
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func sortedKeys(m map[string]metrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedCapKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
