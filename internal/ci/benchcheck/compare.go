package main

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkServeRankCached/cached-8   1964382   610.8 ns/op   96 B/op ...
//
// The trailing -N is the GOMAXPROCS suffix; both files come from the same
// machine in CI, so names compare equal including it.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// Report is the JSON shape of one comparison (the BENCH_serve.json
// artifact).
type Report struct {
	Threshold  float64  `json:"threshold"`
	Benchmarks []Result `json:"benchmarks"`
	// OnlyOld / OnlyNew list benchmarks without a counterpart; they are
	// informational and never fail the check.
	OnlyOld     []string `json:"only_old,omitempty"`
	OnlyNew     []string `json:"only_new,omitempty"`
	Regressions []string `json:"regressions"`
}

// Result compares one benchmark's median ns/op across the two files.
type Result struct {
	Name       string  `json:"name"`
	OldNsOp    float64 `json:"old_ns_op"`
	NewNsOp    float64 `json:"new_ns_op"`
	Delta      float64 `json:"delta"` // (new-old)/old; positive = slower
	Regression bool    `json:"regression"`
}

// Compare parses two bench outputs and flags every benchmark whose median
// ns/op grew by more than threshold.
func Compare(oldData, newData []byte, threshold float64) (Report, error) {
	oldMed, err := medians(oldData)
	if err != nil {
		return Report{}, fmt.Errorf("baseline: %w", err)
	}
	newMed, err := medians(newData)
	if err != nil {
		return Report{}, fmt.Errorf("candidate: %w", err)
	}
	if len(oldMed) == 0 && len(newMed) == 0 {
		return Report{}, fmt.Errorf("no benchmark results in either file")
	}
	rep := Report{Threshold: threshold, Regressions: []string{}}
	for _, name := range sortedKeys(oldMed) {
		if _, ok := newMed[name]; !ok {
			rep.OnlyOld = append(rep.OnlyOld, name)
		}
	}
	for _, name := range sortedKeys(newMed) {
		old, ok := oldMed[name]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, name)
			continue
		}
		r := Result{Name: name, OldNsOp: old, NewNsOp: newMed[name]}
		if old > 0 {
			r.Delta = (r.NewNsOp - old) / old
		}
		r.Regression = r.Delta > threshold
		if r.Regression {
			rep.Regressions = append(rep.Regressions, name)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	return rep, nil
}

// medians collects each benchmark's median ns/op over its -count
// repetitions.
func medians(data []byte) (map[string]float64, error) {
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		sort.Float64s(xs)
		n := len(xs)
		if n%2 == 1 {
			out[name] = xs[n/2]
		} else {
			out[name] = (xs[n/2-1] + xs[n/2]) / 2
		}
	}
	return out, nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
