// Sharded serving-layer benchmark: aggregate throughput of the
// shard.Coordinator under a mixed apply+rank workload at increasing shard
// counts. CI's bench-regression job tracks it (with the serve benchmarks)
// against the main-branch baseline — a contention regression in the shard
// router, the broadcast path or the per-shard serve stack shows up here
// before a load test would catch it.
package contextrank_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	contextrank "repro"
	"repro/internal/serve"
	"repro/internal/serve/shard"
	"repro/internal/workload"
)

// benchCoordinator builds an n-shard coordinator over the scaled-down
// TV-watcher dataset with k rules and one session per user.
func benchCoordinator(b *testing.B, shards, k, sessions int) (*shard.Coordinator, []string) {
	b.Helper()
	coord, err := shard.New(shards, func(int) (*contextrank.System, error) {
		sys := contextrank.NewSystem()
		if _, err := workload.LoadBench(sys.Loader(), sys.Rules(), workload.SmallSpec(), k); err != nil {
			return nil, err
		}
		return sys, nil
	}, serve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	users := make([]string, sessions)
	for u := 0; u < sessions; u++ {
		users[u] = fmt.Sprintf("person%04d", u%workload.SmallSpec().Persons)
		if _, err := coord.SetSession(users[u], benchMeasurements(k, u, 0)); err != nil {
			b.Fatal(err)
		}
	}
	return coord, users
}

// benchMeasurements is the rotating context subset the load generator
// uses: user u in phase p holds every second bench concept.
func benchMeasurements(k, u, phase int) []serve.Measurement {
	var ms []serve.Measurement
	for i := 0; i < k; i++ {
		if (i+u+phase)%2 == 0 {
			ms = append(ms, serve.Measurement{Concept: workload.BenchContextConcept(i), Prob: 1})
		}
	}
	return ms
}

// BenchmarkServeRankSharded measures mixed apply+rank throughput across
// shard counts: one op in eight is a session context rotation (a
// shard-local write), the rest are ranks. More shards mean fewer sessions
// per merged apply and fewer ranks stalled behind each apply, so ns/op
// should fall as shards rise — CI fails if any point regresses >20%
// against main.
func BenchmarkServeRankSharded(b *testing.B) {
	const k, sessions = 4, 16
	opts := contextrank.RankOptions{Limit: 10}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			coord, users := benchCoordinator(b, shards, k, sessions)
			// Warm both context phases per user so steady state is a mix
			// of cached ranks and applies, not first-touch compilation.
			for u, user := range users {
				for phase := 0; phase < 2; phase++ {
					if _, err := coord.SetSession(user, benchMeasurements(k, u, phase)); err != nil {
						b.Fatal(err)
					}
					if _, _, err := coord.Rank(user, "TvProgram", opts); err != nil {
						b.Fatal(err)
					}
				}
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1) - 1)
					u := i % len(users)
					user := users[u]
					if i%8 == 7 {
						if _, err := coord.SetSession(user, benchMeasurements(k, u, i/8)); err != nil {
							b.Fatal(err)
						}
						continue
					}
					if _, _, err := coord.Rank(user, "TvProgram", opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
