package contextrank

import (
	"bytes"
	"math"
	"testing"
)

// TestRestoreRetiresSnapshotContext: a snapshot taken with an applied
// uncertain context carries that context's ctx_* declarations; the first
// SetContext on the restored system must retract and retire them instead of
// leaking them (or colliding with their names), keeping the event space
// bounded across save/restore cycles too.
func TestRestoreRetiresSnapshotContext(t *testing.T) {
	sys := NewSystem()
	if err := sys.DeclareConcept("Doc"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssertConcept("Doc", "d1", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContext(NewContext("u").Add("Rainy", 0.7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSystem(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.DB().Space().Len(); got != 1 {
		t.Fatalf("restored space holds %d events, want 1 (the snapshot context's)", got)
	}
	// Re-sensing context on the restored system (fresh per §5) must neither
	// collide with the restored event names nor leave them behind.
	for i := 0; i < 5; i++ {
		if err := restored.SetContext(NewContext("u").Add("Rainy", 0.8).Add("Cold", 0.5)); err != nil {
			t.Fatalf("post-restore apply %d: %v", i, err)
		}
	}
	if got := restored.DB().Space().Len(); got != 2 {
		t.Fatalf("space holds %d events after post-restore applies, want 2 (snapshot context leaked)", got)
	}
}

func TestAlgorithmSampledApproximates(t *testing.T) {
	sys := buildTVTouch(t)
	exact, err := sys.Rank("peter", "TvProgram")
	if err != nil {
		t.Fatal(err)
	}
	approx, err := sys.RankWith("peter", "TvProgram", RankOptions{Algorithm: AlgorithmSampled})
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != len(exact) {
		t.Fatalf("sizes: %d vs %d", len(approx), len(exact))
	}
	byID := map[string]float64{}
	for _, r := range exact {
		byID[r.ID] = r.Score
	}
	for _, r := range approx {
		if math.Abs(r.Score-byID[r.ID]) > 0.05 {
			t.Fatalf("sampled score(%s) = %g, exact %g", r.ID, r.Score, byID[r.ID])
		}
	}
	if approx[0].ID != "Channel5News" {
		t.Fatalf("order = %v", approx)
	}
}

func TestRankGroup(t *testing.T) {
	sys := buildTVTouch(t)
	// One context snapshot covering both users.
	ctx := NewContext("peter").Certain("Weekend").Certain("Breakfast").
		CertainFor("mary", "Weekend").CertainFor("mary", "Breakfast")
	if err := sys.SetContext(ctx); err != nil {
		t.Fatal(err)
	}
	maryRule, err := ParseRule("RULE M WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.5")
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.RankGroup(
		[]string{"peter", "mary"}, "TvProgram",
		map[string][]Rule{"peter": sys.Rules().Rules(), "mary": {maryRule}},
		PolicyConsensus)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %v", results)
	}
	for _, r := range results {
		if r.ID == "BBCNews" && math.Abs(r.Score-0.18*0.5) > 1e-9 {
			t.Fatalf("consensus = %v", r)
		}
	}
	// Average policy runs too.
	if _, err := sys.RankGroup([]string{"peter", "mary"}, "TvProgram",
		map[string][]Rule{}, PolicyAverage); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RankGroup(nil, "TvProgram", nil, PolicyConsensus); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := sys.RankGroup([]string{"peter"}, "NOT (", nil, PolicyConsensus); err == nil {
		t.Fatal("bad target accepted")
	}
}

func TestSnapshotRoundTripThroughFacade(t *testing.T) {
	sys := buildTVTouch(t)
	var buf bytes.Buffer
	if err := sys.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSystem(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Rules survive.
	if restored.Rules().Len() != 2 {
		t.Fatalf("rules = %d", restored.Rules().Len())
	}
	// Vocabulary survives: new assertions and context still work.
	if err := restored.AssertConcept("TvProgram", "NewShow", 1); err != nil {
		t.Fatal(err)
	}
	if err := restored.SetContext(NewContext("peter").Certain("Weekend").Certain("Breakfast")); err != nil {
		t.Fatal(err)
	}
	results, err := restored.Rank("peter", "TvProgram")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %v", results)
	}
	// Table 1 scores reproduce on the restored system.
	for _, r := range results {
		if r.ID == "Channel5News" && math.Abs(r.Score-0.6006) > 1e-9 {
			t.Fatalf("restored score = %v", r)
		}
	}
	if _, err := RestoreSystem(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestAnalyzeRulesThroughFacade(t *testing.T) {
	sys := buildTVTouch(t)
	if fs := sys.AnalyzeRules(); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
	if _, err := sys.AddRule("RULE Dup WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8"); err != nil {
		t.Fatal(err)
	}
	fs := sys.AnalyzeRules()
	if len(fs) != 1 || fs[0].Kind != "duplicate" {
		t.Fatalf("findings = %v", fs)
	}
}
