// Command quickstart reproduces the paper's worked example (§4.2) through
// the public API: four television programs with uncertain features, the two
// scored preference rules R1 and R2, and the context "breakfast during the
// weekend". The printed scores match Table 1's hand calculation:
// Channel 5 news 0.6006, BBC news 0.18, Oprah 0.071, MPFS 0.02.
package main

import (
	"fmt"
	"log"

	contextrank "repro"
)

func main() {
	sys := contextrank.NewSystem()

	// Terminology: one concept for programs, two roles for their features.
	check(sys.DeclareConcept("TvProgram", "Weekend", "Breakfast"))
	check(sys.DeclareRole("hasGenre", "hasSubject"))

	// Table 1: programs and their (possibly uncertain) features.
	for _, p := range []string{"Oprah", "BBC_news", "Channel5_news", "MontyPython"} {
		check(sys.AssertConcept("TvProgram", p, 1))
	}
	check(sys.AssertRole("hasGenre", "Oprah", "HUMAN-INTEREST", 0.85))
	check(sys.AssertRole("hasGenre", "Channel5_news", "HUMAN-INTEREST", 0.95))
	check(sys.AssertRole("hasSubject", "BBC_news", "News", 1.0))
	check(sys.AssertRole("hasSubject", "Channel5_news", "News", 0.85))

	// The user's scored preference rules (§4.1).
	mustRule(sys, "RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8")
	mustRule(sys, "RULE R2 WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.9")

	// Context: Peter is having breakfast during the weekend (certain).
	check(sys.SetContext(contextrank.NewContext("peter").Certain("Weekend").Certain("Breakfast")))

	// The paper's introductory query:
	//   SELECT name, preferencescore FROM Programs
	//   WHERE preferencescore > 0.5 ORDER BY preferencescore DESC
	// — here with threshold 0 so all four scores are visible.
	results, err := sys.RankWith("peter", "TvProgram", contextrank.RankOptions{Explain: true})
	check(err)

	fmt.Println("Context: weekend breakfast")
	fmt.Println("program          preferencescore")
	for _, r := range results {
		fmt.Printf("%-16s %.4f\n", r.ID, r.Score)
	}
	fmt.Println("\nWhy is Channel5_news on top?")
	for _, contrib := range results[0].Explanation.Rules {
		fmt.Println("  " + contrib.String())
	}
}

func mustRule(sys *contextrank.System, text string) {
	if _, err := sys.AddRule(text); err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
