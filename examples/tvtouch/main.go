// Command tvtouch runs the paper's motivating scenario (§1): the TVTouch
// media player suggests programs each morning based on the user's sensed —
// and therefore uncertain — context. A clock, a room-level location sensor
// and an activity recognizer feed the situated user's context; the ranking
// is recomputed as the context develops ("as the current context develops,
// the probabilities of containment of tuples in the view change
// accordingly", §5).
package main

import (
	"fmt"
	"log"
	"time"

	contextrank "repro"
	"repro/internal/situation"
)

func main() {
	sys := contextrank.NewSystem()
	check(sys.DeclareConcept("TvProgram"))
	check(sys.DeclareRole("hasGenre", "hasSubject"))

	// A small program guide; feature probabilities model imperfect
	// auto-tagging by the data supplier (§3.1).
	programs := []struct {
		id      string
		genre   string
		gProb   float64
		subject string
		sProb   float64
	}{
		{"traffic_7am", "", 0, "Traffic", 1.0},
		{"weather_7am", "", 0, "Weather", 1.0},
		{"morning_news", "", 0, "News", 0.95},
		{"oprah_rerun", "HUMAN-INTEREST", 0.85, "", 0},
		{"cooking_show", "LIFESTYLE", 0.9, "", 0},
		{"late_movie", "THRILLER", 1.0, "", 0},
	}
	for _, p := range programs {
		check(sys.AssertConcept("TvProgram", p.id, 1))
		if p.genre != "" {
			check(sys.AssertRole("hasGenre", p.id, p.genre, p.gProb))
		}
		if p.subject != "" {
			check(sys.AssertRole("hasSubject", p.id, p.subject, p.sProb))
		}
	}

	// Peter's preference rules: traffic and weather on workday mornings
	// (the Figure 1 abstraction: σ 0.8 and 0.6), news at breakfast, and
	// human interest in the weekend.
	for _, rule := range []string{
		"RULE traffic WHEN Workday AND Morning PREFER TvProgram AND EXISTS hasSubject.{Traffic} WITH 0.8",
		"RULE weather WHEN Workday AND Morning PREFER TvProgram AND EXISTS hasSubject.{Weather} WITH 0.6",
		"RULE news WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.9",
		"RULE weekend WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8",
		"RULE kitchen WHEN InKitchen PREFER TvProgram AND EXISTS hasGenre.{LIFESTYLE} WITH 0.7",
	} {
		if _, err := sys.AddRule(rule); err != nil {
			log.Fatal(err)
		}
	}

	show := func(title string, sensors ...contextrank.Sensor) {
		ctx, err := contextrank.SenseContext("peter", sensors...)
		check(err)
		check(sys.SetContext(ctx))
		results, err := sys.RankWith("peter", "TvProgram",
			contextrank.RankOptions{Explain: true, Limit: 3})
		check(err)
		fmt.Printf("\n=== %s ===\n", title)
		fmt.Print("sensed: ")
		for i, m := range ctx.Measurements {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %.2f", m.Concept, m.Prob)
		}
		fmt.Println()
		for rank, r := range results {
			fmt.Printf("%d. %-14s %.4f\n", rank+1, r.ID, r.Score)
		}
		if len(results) > 0 {
			fmt.Println("   top pick because:")
			for _, c := range results[0].Explanation.Rules {
				if !c.Pruned {
					fmt.Println("   - " + c.String())
				}
			}
		}
	}

	rooms := []string{"InKitchen", "InLivingRoom", "InOffice"}
	activities := []string{"Cooking", "Relaxing", "Working"}

	// Monday 7:30 — breakfast in the kitchen, location a bit noisy.
	show("Monday 07:30, making breakfast",
		situation.ClockSensor{Now: time.Date(2026, 6, 15, 7, 30, 0, 0, time.Local)},
		situation.LocationSensor{Rooms: rooms, TrueRoom: "InKitchen", Accuracy: 0.8},
		situation.ActivitySensor{Activities: activities, TrueActivity: "Cooking", Confidence: 0.7},
	)

	// Saturday 10:00 — relaxing in the living room.
	show("Saturday 10:00, relaxing",
		situation.ClockSensor{Now: time.Date(2026, 6, 20, 10, 0, 0, 0, time.Local)},
		situation.LocationSensor{Rooms: rooms, TrueRoom: "InLivingRoom", Accuracy: 0.9},
		situation.ActivitySensor{Activities: activities, TrueActivity: "Relaxing", Confidence: 0.8},
	)

	// Monday 20:00 — no morning rules apply; ranking flattens.
	show("Monday 20:00, working late",
		situation.ClockSensor{Now: time.Date(2026, 6, 15, 20, 0, 0, 0, time.Local)},
		situation.LocationSensor{Rooms: rooms, TrueRoom: "InOffice", Accuracy: 0.9},
		situation.ActivitySensor{Activities: activities, TrueActivity: "Working", Confidence: 0.9},
	)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
