// Command groupwatch demonstrates §6 "Modeling multiple users": "in some
// cases we might have to deal with ranking results for multiple users (for
// example if multiple users want to watch TV together). We conjecture that
// this could be naturally addressed with the model presented here" — this
// example does exactly that, ranking one program guide for a couple with
// different preference rules under three group policies.
package main

import (
	"fmt"
	"log"

	contextrank "repro"
)

func main() {
	sys := contextrank.NewSystem()
	check(sys.DeclareConcept("TvProgram"))
	check(sys.DeclareRole("hasGenre"))

	programs := map[string]string{
		"football_match": "SPORTS",
		"costume_drama":  "DRAMA",
		"nature_doc":     "DOCUMENTARY",
		"quiz_show":      "ENTERTAINMENT",
		"action_movie":   "ACTION",
	}
	for id, genre := range programs {
		check(sys.AssertConcept("TvProgram", id, 1))
		check(sys.AssertRole("hasGenre", id, genre, 1))
	}

	// Peter loves sports and likes documentaries; Mary loves drama and
	// likes documentaries; neither cares for quiz shows.
	rule := func(name, ctx, genre string, sigma float64) contextrank.Rule {
		r, err := contextrank.ParseRule(fmt.Sprintf(
			"RULE %s WHEN %s PREFER TvProgram AND EXISTS hasGenre.{%s} WITH %g",
			name, ctx, genre, sigma))
		check(err)
		return r
	}
	peterRules := []contextrank.Rule{
		rule("p-sport", "EveningTogether", "SPORTS", 0.9),
		rule("p-doc", "EveningTogether", "DOCUMENTARY", 0.6),
	}
	maryRules := []contextrank.Rule{
		rule("m-drama", "EveningTogether", "DRAMA", 0.9),
		rule("m-doc", "EveningTogether", "DOCUMENTARY", 0.7),
	}

	// One context snapshot covering both members of the group.
	ctx := contextrank.NewContext("peter").Certain("EveningTogether").
		CertainFor("mary", "EveningTogether")
	check(sys.SetContext(ctx))

	rulesFor := map[string][]contextrank.Rule{
		"peter": peterRules,
		"mary":  maryRules,
	}
	for _, policy := range []contextrank.GroupPolicy{
		contextrank.PolicyConsensus,
		contextrank.PolicyAverage,
		contextrank.PolicyLeastMisery,
	} {
		results, err := sys.RankGroup([]string{"peter", "mary"}, "TvProgram", rulesFor, policy)
		check(err)
		fmt.Printf("\n=== policy: %s ===\n", policy)
		for i, r := range results {
			fmt.Printf("%d. %-15s group %.4f  (peter %.3f, mary %.3f)\n",
				i+1, r.ID, r.Score, r.PerMember["peter"], r.PerMember["mary"])
		}
	}
	fmt.Println("\nNote the policy disagreement: averaging rewards the partisan")
	fmt.Println("picks (sports for Peter, drama for Mary), while least-misery")
	fmt.Println("promotes the documentary — nobody's favourite, nobody's veto.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
