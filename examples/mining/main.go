// Command mining demonstrates §6 "Mining/learning preferences": scored
// preference rules are "an abstraction/generalization of the history of the
// user [that] could really be mined from the history". It generates a
// synthetic viewing history from known ground-truth σ values (the Figure 1
// abstraction: traffic 0.8, weather 0.6 on workday mornings), mines σ back
// with the paper's exact conditional-frequency semantics, converts the
// estimates into rules, and ranks with them.
package main

import (
	"fmt"
	"log"
	"math/rand"

	contextrank "repro"
	"repro/internal/history"
)

func main() {
	sys := contextrank.NewSystem()
	check(sys.DeclareConcept("TvProgram"))
	check(sys.DeclareRole("hasSubject"))
	for _, p := range []struct{ id, subject string }{
		{"traffic_bulletin", "traffic"},
		{"weather_bulletin", "weather"},
		{"game_show", "entertainment"},
	} {
		check(sys.AssertConcept("TvProgram", p.id, 1))
		check(sys.AssertRole("hasSubject", p.id, p.subject, 1))
	}

	// Ground truth (Figure 1): on workday mornings the user watches the
	// traffic bulletin 80% and the weather bulletin 60% of the time.
	truth := []history.GroundTruth{
		{Context: "WorkdayMorning", DocFeature: "traffic", Sigma: 0.8},
		{Context: "WorkdayMorning", DocFeature: "weather", Sigma: 0.6},
	}
	gen := &history.Generator{
		Truth:    truth,
		Contexts: []string{"WorkdayMorning"},
		Docs: []contextrank.HistoryDoc{
			{ID: "traffic_bulletin", Features: map[string]bool{"traffic": true}},
			{ID: "weather_bulletin", Features: map[string]bool{"weather": true}},
			{ID: "game_show", Features: map[string]bool{"entertainment": true}},
		},
		Rng: rand.New(rand.NewSource(7)),
	}
	for _, n := range []int{10, 100, 1000, 5000} {
		log := contextrank.HistoryLog{}
		if err := gen.Generate(&log, n); err != nil {
			panic(err)
		}
		fmt.Printf("history length %5d:", n)
		for _, tr := range truth {
			est, ok := log.MineSigma(tr.Context, tr.DocFeature)
			if !ok {
				fmt.Printf("  %s: no support", tr.DocFeature)
				continue
			}
			fmt.Printf("  σ(%s)=%.3f (truth %.1f)", tr.DocFeature, est.Sigma, tr.Sigma)
		}
		fmt.Println()
	}

	// Record a long history on the system itself and mine rules.
	check(gen.Generate(sys.History(), 5000))
	rules, err := sys.MineRules(100,
		func(ctxFeature string) string { return "WorkdayMorning" },
		func(docFeature string) string {
			switch docFeature {
			case "traffic", "weather":
				return fmt.Sprintf("TvProgram AND EXISTS hasSubject.{%s}", docFeature)
			}
			return "" // don't mine rules for the filler feature
		})
	check(err)
	fmt.Println("\nmined rules:")
	for _, r := range rules {
		fmt.Println("  " + r.String())
		check(sys.Rules().Add(r))
	}

	// Use the mined rules: workday morning context.
	check(sys.SetContext(contextrank.NewContext("peter").Certain("WorkdayMorning")))
	results, err := sys.Rank("peter", "TvProgram")
	check(err)
	fmt.Println("\nranking under mined rules (workday morning):")
	for _, r := range results {
		fmt.Printf("  %-18s %.4f\n", r.ID, r.Score)
	}
	// Figure 1's closing computation: a program with neither feature is
	// ideal with probability (1-0.8)(1-0.6) = 0.08; the mined σ values land
	// close to that.
	fmt.Println("\npaper's Figure 1 check: P(neither) = (1-0.8)(1-0.6) = 0.08")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
