// Command smartoffice applies the library to a second domain — an ambient-
// intelligence office assistant that ranks documents for the next meeting —
// to show the model is not TV-specific (the paper positions it for ambient
// intelligent environments in general, after Feng et al., DEXA '04).
//
// It exercises parts of the API the TVTouch examples do not: negated
// preference expressions (¬∃hasLabel.{Archived}), a default rule that
// applies in every context, nominal targets, and direct SQL over the
// concept tables.
package main

import (
	"fmt"
	"log"

	contextrank "repro"
)

func main() {
	sys := contextrank.NewSystem()
	check(sys.DeclareConcept("Document", "Meeting", "Deadline"))
	check(sys.DeclareRole("relatesTo", "authoredBy", "hasLabel"))

	docs := []struct {
		id      string
		project string
		author  string
		labels  []string
		pLabel  float64
	}{
		{"design_doc", "apollo", "ada", []string{"Draft"}, 1.0},
		{"budget_2026", "apollo", "grace", []string{"Final"}, 1.0},
		{"old_roadmap", "apollo", "ada", []string{"Archived"}, 0.9},
		{"meeting_notes", "zeus", "linus", []string{"Final"}, 1.0},
		{"test_plan", "apollo", "margaret", []string{"Draft"}, 0.8},
	}
	for _, d := range docs {
		check(sys.AssertConcept("Document", d.id, 1))
		check(sys.AssertRole("relatesTo", d.id, d.project, 1))
		check(sys.AssertRole("authoredBy", d.id, d.author, 1))
		for _, l := range d.labels {
			check(sys.AssertRole("hasLabel", d.id, l, d.pLabel))
		}
	}

	rules := []string{
		// In a meeting about project apollo, prefer apollo documents.
		"RULE project WHEN InMeetingApollo PREFER Document AND EXISTS relatesTo.{apollo} WITH 0.9",
		// Near a deadline, prefer final documents over drafts.
		"RULE finals WHEN DeadlineWeek PREFER Document AND EXISTS hasLabel.{Final} WITH 0.8",
		// Always: archived material is rarely what anyone wants — a default
		// rule (context TOP) with a negated preference.
		"RULE fresh WHEN TOP PREFER Document AND NOT EXISTS hasLabel.{Archived} WITH 0.95",
	}
	for _, r := range rules {
		if _, err := sys.AddRule(r); err != nil {
			log.Fatal(err)
		}
	}

	// The calendar says the apollo meeting starts in 10 minutes (certain);
	// whether this is still deadline week is uncertain (0.7).
	check(sys.SetContext(contextrank.NewContext("ada").
		Certain("InMeetingApollo").
		Add("DeadlineWeek", 0.7)))

	results, err := sys.RankWith("ada", "Document", contextrank.RankOptions{Explain: true})
	check(err)
	fmt.Println("Documents for the apollo meeting (deadline week p=0.7):")
	for _, r := range results {
		fmt.Printf("  %-14s %.4f\n", r.ID, r.Score)
	}
	fmt.Println("\nWhy old_roadmap sinks:")
	for _, r := range results {
		if r.ID != "old_roadmap" {
			continue
		}
		for _, c := range r.Explanation.Rules {
			fmt.Println("  - " + c.String())
		}
	}

	// Restricting candidates with a composite target expression: only
	// Ada's own documents.
	own, err := sys.Rank("ada", "Document AND EXISTS authoredBy.{ada}")
	check(err)
	fmt.Println("\nOnly Ada's documents:")
	for _, r := range own {
		fmt.Printf("  %-14s %.4f\n", r.ID, r.Score)
	}

	// The uniform SQL view of §5: concept tables are plain relations.
	res, err := sys.Query("SELECT id FROM c_Document ORDER BY id")
	check(err)
	fmt.Printf("\n%d documents in c_Document via SQL\n", len(res.Rows))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
