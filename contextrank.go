// Package contextrank is a context-aware preference ranking library: a Go
// reproduction of "Ranking Query Results using Context-Aware Preferences"
// (van Bunningen, Fokkinga, Apers, Feng — ICDE 2007 Workshops).
//
// The library scores database tuples by the probability that each is the
// "ideal document" for the user's current context, using scored preference
// rules (Context, Preference, σ) whose Context and Preference are
// Description Logic concept expressions and whose σ has an explanatory
// semantics grounded in the user's history. Uncertain context (sensed) and
// uncertain document features are carried through exactly via probabilistic
// event expressions.
//
// A System bundles the embedded probabilistic relational engine, the
// DL-to-SQL mapping layer, the rule repository and four interchangeable
// rankers (factorized, naive, view, sampled):
//
//	sys := contextrank.NewSystem()
//	sys.DeclareConcept("TvProgram")
//	sys.DeclareRole("hasGenre")
//	sys.AssertConcept("TvProgram", "Oprah", 1.0)
//	sys.AssertRole("hasGenre", "Oprah", "HUMAN-INTEREST", 0.85)
//	sys.AddRule("RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8")
//	sys.SetContext(contextrank.NewContext("peter").Certain("Weekend"))
//	results, err := sys.Rank("peter", "TvProgram")
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured record.
package contextrank

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/history"
	"repro/internal/ir"
	"repro/internal/mapping"
	"repro/internal/prefs"
	"repro/internal/situation"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Re-exported types so downstream users need only this package.
type (
	// Rule is a scored preference rule (Context, Preference, σ).
	Rule = prefs.Rule
	// Result is one ranked candidate with optional explanation.
	Result = core.Result
	// Explanation is the per-rule trace attached to a Result.
	Explanation = core.Explanation
	// Context is the situated user's uncertain context.
	Context = situation.Context
	// Sensor contributes measurements to a Context.
	Sensor = situation.Sensor
	// QueryResult is a materialized SQL result set.
	QueryResult = sql.Result
	// HistoryLog is an append-only log of choice episodes.
	HistoryLog = history.Log
	// Episode is one historical choice situation.
	Episode = history.Episode
	// HistoryDoc is a candidate document inside an Episode.
	HistoryDoc = history.Doc
	// Estimate is a mined σ estimate.
	Estimate = history.Estimate
	// IRIndex is a feature-frequency index for the query-dependent score.
	IRIndex = ir.Index
	// IRDocument is one bag-of-features document in an IRIndex.
	IRDocument = ir.Document
	// Finding is one rule-analysis diagnostic from AnalyzeRules.
	Finding = prefs.Finding
)

// NewContext returns an empty context for the given user individual.
func NewContext(user string) *Context { return situation.New(user) }

// SenseContext builds a context by running the given sensors.
func SenseContext(user string, sensors ...Sensor) (*Context, error) {
	return situation.SenseAll(user, sensors...)
}

// ParseRule parses the textual rule syntax
// "[RULE name] WHEN <ctx> PREFER <pref> WITH <σ>".
func ParseRule(text string) (Rule, error) { return prefs.ParseRule(text) }

// Algorithm selects a ranking implementation.
type Algorithm string

// Available ranking algorithms.
const (
	// AlgorithmFactorized is the optimized ranker (§6 extension): exact,
	// linear in the number of independent rules. The default.
	AlgorithmFactorized Algorithm = "factorized"
	// AlgorithmNaive is the literal §3.3 double sum — the reference
	// semantics, exponential in the number of rules.
	AlgorithmNaive Algorithm = "naive"
	// AlgorithmView is the paper's §5 implementation through a database
	// "big preference view" — exponential, reproduces the paper's
	// bottleneck.
	AlgorithmView Algorithm = "view"
	// AlgorithmSampled is the Monte Carlo approximation: O(samples·rules)
	// per candidate regardless of correlation structure, with
	// O(1/√samples) standard error. Deterministic per System (fixed seed).
	AlgorithmSampled Algorithm = "sampled"
)

// RankOptions tune a Rank call.
type RankOptions struct {
	Algorithm Algorithm // defaults to AlgorithmFactorized
	Threshold float64   // drop scores <= Threshold
	Limit     int       // keep at most Limit results (0 = all)
	// TopK, when positive, asks for only the best k results — exactly the
	// first k of the full ranking (identical order and tie-breaking). The
	// compiled-plan path selects them with a bounded heap instead of
	// sorting the whole catalog; other algorithms truncate. 0 disables,
	// negative is an error.
	TopK    int
	Explain bool // attach per-rule explanations
}

// System bundles the engine, the DL mapping, the rule repository and the
// rankers. Create with NewSystem.
//
// # Locking contract
//
// Every component a System is built from is individually safe for
// concurrent use: the SQL executor guards its view registry with an
// RWMutex (DDL takes the write lock), the storage tables and catalog are
// RWMutex-protected, the event space serializes declarations and guards
// its probability memo cache with its own mutex, the mapping loader locks
// its vocabulary and compiled-view cache, and the rule repository and
// history log are RWMutex-protected. The per-System event-name counter
// (evSeq) is a sync/atomic counter, and the sampled ranker builds a fresh
// deterministic generator per Rank call, so none of these race at the
// memory level.
//
// What the components cannot provide is cross-call atomicity: a mutator
// such as SetContext is a multi-step transaction (clear the previous
// context's concept assertions, declare fresh basic events, assert the new
// memberships), and a Rank running between those steps observes a
// half-applied context — no data race, but a semantically torn read. The
// same holds for AddRule (auto-declaring context concepts before
// registering the rule) and for AssertConcept/AssertRole versus an
// in-flight ranking. Therefore:
//
//   - Concurrent readers are safe: any number of goroutines may call
//     Rank, RankWith, RankQuery, RankGroup, Query and AnalyzeRules at
//     once. (Ranking may lazily compile concept views, but view
//     compilation is internally synchronized and idempotent.)
//   - Mutators — DeclareConcept, DeclareRole, SubConcept, AssertConcept,
//     AssertRole, AddRule, SetContext, Exec, RestoreSystem-adjacent setup
//     — must be externally serialized against all readers.
//
// internal/serve.Facade packages exactly this discipline (readers share an
// RLock, mutators take the write lock and bump an invalidation epoch);
// servers should wrap a System in it rather than hand-rolling locks.
type System struct {
	db     *engine.DB
	loader *mapping.Loader
	repo   *prefs.Repository
	log    *history.Log
	evSeq  atomic.Int64

	naive      *core.NaiveRanker
	factorized *core.FactorizedRanker
	view       *core.ViewRanker
	sampled    *core.SampledRanker
}

// NewSystem creates an empty system with a fresh database.
func NewSystem() *System {
	db := engine.New()
	loader := mapping.NewLoader(db, dl.NewTBox())
	return &System{
		db:         db,
		loader:     loader,
		repo:       prefs.NewRepository(),
		log:        history.NewLog(),
		naive:      core.NewNaiveRanker(loader),
		factorized: core.NewFactorizedRanker(loader),
		view:       core.NewViewRanker(loader),
		sampled:    core.NewSampledRanker(loader, 0, 1),
	}
}

// DB exposes the embedded database for direct SQL (SELECT/CREATE/INSERT…).
func (s *System) DB() *engine.DB { return s.db }

// Loader exposes the DL mapping layer for advanced use.
func (s *System) Loader() *mapping.Loader { return s.loader }

// Rules returns the rule repository.
func (s *System) Rules() *prefs.Repository { return s.repo }

// History returns the system's choice log (for σ mining).
func (s *System) History() *history.Log { return s.log }

// DeclareConcept registers an atomic concept (idempotent).
func (s *System) DeclareConcept(names ...string) error {
	for _, n := range names {
		if err := s.loader.DeclareConcept(n); err != nil {
			return err
		}
	}
	return nil
}

// DeclareRole registers a role (idempotent).
func (s *System) DeclareRole(names ...string) error {
	for _, n := range names {
		if err := s.loader.DeclareRole(n); err != nil {
			return err
		}
	}
	return nil
}

// SubConcept records the TBox axiom sub ⊑ super (super in DL syntax).
func (s *System) SubConcept(sub, super string) error {
	e, err := dl.Parse(super)
	if err != nil {
		return err
	}
	s.loader.TBox().AddSub(sub, e)
	return nil
}

// freshEvent declares a new basic event with probability p and returns it.
func (s *System) freshEvent(prefix string, p float64) (*event.Expr, error) {
	name := fmt.Sprintf("%s_%d", prefix, s.evSeq.Add(1))
	if err := s.db.Space().Declare(name, p); err != nil {
		return nil, err
	}
	return event.Basic(name), nil
}

// AssertConcept asserts id ∈ concept with the given probability: 1 is a
// certain assertion, anything in (0,1) creates a fresh independent basic
// event carrying the uncertainty.
func (s *System) AssertConcept(concept, id string, prob float64) error {
	ev, err := s.assertionEvent("c", prob)
	if err != nil {
		return err
	}
	return s.loader.AssertConcept(concept, id, ev)
}

// AssertRole asserts (src, dst) ∈ role with the given probability.
func (s *System) AssertRole(role, src, dst string, prob float64) error {
	ev, err := s.assertionEvent("r", prob)
	if err != nil {
		return err
	}
	return s.loader.AssertRole(role, src, dst, ev)
}

func (s *System) assertionEvent(prefix string, prob float64) (*event.Expr, error) {
	switch {
	case prob == 1:
		return event.True(), nil
	case prob > 0 && prob < 1:
		return s.freshEvent(prefix, prob)
	default:
		return nil, fmt.Errorf("contextrank: assertion probability %g outside (0,1]", prob)
	}
}

// AddRule parses and registers a scored preference rule, validating its
// vocabulary against the declared concepts and roles.
func (s *System) AddRule(text string) (Rule, error) {
	rule, err := prefs.ParseRule(text)
	if err != nil {
		return Rule{}, err
	}
	if err := s.validateRuleVocabulary(rule); err != nil {
		return Rule{}, err
	}
	return rule, s.repo.Add(rule)
}

// validateRuleVocabulary checks that a rule's preference uses declared
// vocabulary. Context concepts may be declared lazily by SetContext, so
// they are auto-declared here instead of rejected.
func (s *System) validateRuleVocabulary(rule Rule) error {
	for _, c := range rule.Context.Signature().Concepts {
		if err := s.loader.DeclareConcept(c); err != nil {
			return err
		}
	}
	sig := rule.Preference.Signature()
	for _, c := range sig.Concepts {
		if !s.loader.HasConcept(c) {
			return fmt.Errorf("contextrank: rule %s prefers undeclared concept %q", rule.Name, c)
		}
	}
	for _, r := range sig.Roles {
		if !s.loader.HasRole(r) {
			return fmt.Errorf("contextrank: rule %s uses undeclared role %q", rule.Name, r)
		}
	}
	for _, r := range rule.Context.Signature().Roles {
		if !s.loader.HasRole(r) {
			return fmt.Errorf("contextrank: rule %s context uses undeclared role %q", rule.Name, r)
		}
	}
	return nil
}

// SetContext applies the user's current context, replacing the previous
// one.
func (s *System) SetContext(ctx *Context) error { return ctx.Apply(s.loader) }

// Rank scores the members of the target concept expression (DL syntax) for
// the user with the repository's rules, using default options.
func (s *System) Rank(user, target string) ([]Result, error) {
	return s.RankWith(user, target, RankOptions{})
}

// RankWith is Rank with explicit options.
func (s *System) RankWith(user, target string, opts RankOptions) ([]Result, error) {
	targetExpr, err := dl.Parse(target)
	if err != nil {
		return nil, err
	}
	req := core.Request{
		User:      user,
		Target:    targetExpr,
		Rules:     s.repo.Rules(),
		Threshold: opts.Threshold,
		Limit:     opts.Limit,
		TopK:      opts.TopK,
		Explain:   opts.Explain,
	}
	ranker, err := s.ranker(opts.Algorithm, false)
	if err != nil {
		return nil, err
	}
	return ranker.Rank(req)
}

// KnownAlgorithm reports whether alg names a ranking implementation (the
// empty string counts: it is the factorized default). The serving layer
// validates batch requests against this so the accepted set cannot drift
// from the ranker selector below.
func KnownAlgorithm(alg Algorithm) bool {
	switch alg {
	case "", AlgorithmFactorized, AlgorithmNaive, AlgorithmView, AlgorithmSampled:
		return true
	}
	return false
}

// ranker selects the implementation behind an Algorithm. The view ranker
// ranks whole concepts only; candidate-list paths pass noView to reject it.
func (s *System) ranker(alg Algorithm, noView bool) (core.Ranker, error) {
	switch alg {
	case "", AlgorithmFactorized:
		return s.factorized, nil
	case AlgorithmNaive:
		return s.naive, nil
	case AlgorithmView:
		if noView {
			return nil, fmt.Errorf("contextrank: the view algorithm ranks whole concepts, not candidate lists; use factorized, naive or sampled")
		}
		return s.view, nil
	case AlgorithmSampled:
		return s.sampled, nil
	default:
		return nil, fmt.Errorf("contextrank: unknown algorithm %q", alg)
	}
}

// RankPlan is a compiled, reusable ranking plan: the per-(user, rule set,
// context epoch) work of the factorized ranker — rule resolution, context
// pruning, correlation clustering and the context-state probability tables
// — hoisted out of the per-candidate loop. Compile one with
// CompileRankPlan and rank any number of targets or candidate lists
// against it; a plan stays valid until the data, rules or applied context
// change (a context re-apply retires the old context's events, after which
// the plan's methods fail rather than misrank). internal/serve caches
// plans keyed by exactly those inputs.
type RankPlan = core.Plan

// CompileRankPlan compiles the repository's rules for one situated user
// into a reusable RankPlan.
func (s *System) CompileRankPlan(user string) (*RankPlan, error) {
	return core.CompilePlan(s.loader, user, s.repo.Rules())
}

// RefreshRankPlan incrementally maintains a plan across a context change:
// it compiles a successor of plan for the system's *current* context,
// reusing the candidate-independent work the change provably left intact —
// preference membership maps whose concepts the applied context does not
// touch, the document-side block footprints, and the per-candidate
// document distributions the footprint diff clears as unaffected. Scores
// from the refreshed plan are bit-identical to a fresh CompileRankPlan of
// the same state.
//
// The contract matches the serving layer's epoch discipline: only context
// applies (SetContext / session applies) may have happened since plan was
// compiled, under the same rule set. After data or rule mutations the plan
// is invalid and must be recompiled; RefreshRankPlan does not detect that
// for you. ErrPlanNotRefreshable marks a plan that cannot be maintained
// (per-request restricted compiles) — fall back to CompileRankPlan.
func (s *System) RefreshRankPlan(plan *RankPlan) (*RankPlan, error) {
	return plan.Refresh()
}

// ErrPlanNotRefreshable marks a plan RefreshRankPlan cannot maintain
// incrementally; callers fall back to CompileRankPlan.
var ErrPlanNotRefreshable = core.ErrPlanNotRefreshable

// RankWithPlan ranks the members of the target concept expression against
// an already compiled plan — the factorized algorithm with its compile
// step amortized away. opts.Algorithm must be empty or AlgorithmFactorized.
func (s *System) RankWithPlan(plan *RankPlan, target string, opts RankOptions) ([]Result, error) {
	if err := planOptsOK(opts); err != nil {
		return nil, err
	}
	targetExpr, err := dl.Parse(target)
	if err != nil {
		return nil, err
	}
	return plan.Rank(core.PlanRequest{
		Target:    targetExpr,
		Threshold: opts.Threshold,
		Limit:     opts.Limit,
		TopK:      opts.TopK,
		Explain:   opts.Explain,
	})
}

// RankCandidatesWithPlan ranks an explicit candidate list against an
// already compiled plan (the §5 query-integration shape: the candidates
// typically come from the user's own query).
func (s *System) RankCandidatesWithPlan(plan *RankPlan, candidates []string, opts RankOptions) ([]Result, error) {
	if err := planOptsOK(opts); err != nil {
		return nil, err
	}
	return plan.Rank(core.PlanRequest{
		Candidates: candidates,
		Threshold:  opts.Threshold,
		Limit:      opts.Limit,
		TopK:       opts.TopK,
		Explain:    opts.Explain,
	})
}

// planOptsOK rejects options that name a non-factorized algorithm: a plan
// is a compiled factorized ranker, silently ignoring the algorithm would
// rank with a different implementation than requested.
func planOptsOK(opts RankOptions) error {
	if opts.Algorithm != "" && opts.Algorithm != AlgorithmFactorized {
		return fmt.Errorf("contextrank: rank plans implement the factorized algorithm, not %q", opts.Algorithm)
	}
	return nil
}

// HotPathStats reports the effectiveness of the rank hot path's pooled
// scratch arenas and per-plan document-distribution caches. The counters
// are process-global (plans come and go through caches; the scratch pool
// is shared), so the serving layer reports them once per process, not per
// shard.
type HotPathStats = core.HotPathStats

// ReadHotPathStats returns the process-wide rank hot-path counters.
func ReadHotPathStats() HotPathStats { return core.ReadHotPathStats() }

// RulesFingerprint hashes the registered rules; see
// prefs.Repository.Fingerprint. Combined with the data epoch and context
// state it keys compiled rank plans.
func (s *System) RulesFingerprint() string { return s.repo.Fingerprint() }

// ErrPlanClusterBound marks a plan compilation rejected because the
// candidate-independent footprint partition produced a correlation cluster
// too large to enumerate exactly. RankWith and RankCandidates fall back
// internally and may still rank such a rule set; callers compiling plans
// directly (e.g. a plan cache) should detect this with errors.Is and route
// the request through RankNoPlan/RankCandidatesNoPlan, which skip the
// doomed recompile.
var ErrPlanClusterBound = core.ErrClusterBound

// RankNoPlan ranks the target with the factorized per-candidate path,
// skipping plan compilation entirely. Scores match RankWith exactly; the
// only reason to call it is a cached ErrPlanClusterBound verdict.
// opts.Algorithm must be empty or AlgorithmFactorized.
func (s *System) RankNoPlan(user, target string, opts RankOptions) ([]Result, error) {
	if err := planOptsOK(opts); err != nil {
		return nil, err
	}
	targetExpr, err := dl.Parse(target)
	if err != nil {
		return nil, err
	}
	return s.factorized.RankPerCandidate(core.Request{
		User:      user,
		Target:    targetExpr,
		Rules:     s.repo.Rules(),
		Threshold: opts.Threshold,
		Limit:     opts.Limit,
		TopK:      opts.TopK,
		Explain:   opts.Explain,
	})
}

// RankCandidatesNoPlan is RankNoPlan for an explicit candidate list.
func (s *System) RankCandidatesNoPlan(user string, candidates []string, opts RankOptions) ([]Result, error) {
	if err := planOptsOK(opts); err != nil {
		return nil, err
	}
	return s.factorized.RankPerCandidate(core.Request{
		User:       user,
		Candidates: candidates,
		Rules:      s.repo.Rules(),
		Threshold:  opts.Threshold,
		Limit:      opts.Limit,
		TopK:       opts.TopK,
		Explain:    opts.Explain,
	})
}

// RankCandidates scores an explicit candidate list for the user with the
// repository's rules — RankQuery without the query, for callers that
// already hold the candidate ids (e.g. the serving layer's batch
// endpoint). The view algorithm is not supported (it ranks whole
// concepts).
func (s *System) RankCandidates(user string, candidates []string, opts RankOptions) ([]Result, error) {
	ranker, err := s.ranker(opts.Algorithm, true)
	if err != nil {
		return nil, err
	}
	return ranker.Rank(core.Request{
		User:       user,
		Candidates: candidates,
		Rules:      s.repo.Rules(),
		Threshold:  opts.Threshold,
		Limit:      opts.Limit,
		TopK:       opts.TopK,
		Explain:    opts.Explain,
	})
}

// GroupPolicy selects how member scores combine in RankGroup.
type GroupPolicy = core.GroupPolicy

// Group aggregation policies (§6 "Modeling multiple users").
const (
	// PolicyConsensus multiplies member probabilities (ideal for everyone).
	PolicyConsensus = core.PolicyConsensus
	// PolicyAverage takes the utilitarian mean.
	PolicyAverage = core.PolicyAverage
	// PolicyLeastMisery takes the minimum member score.
	PolicyLeastMisery = core.PolicyLeastMisery
)

// GroupResult is one candidate with its group and per-member scores.
type GroupResult = core.GroupResult

// RankGroup ranks the target for several users at once (§6 "Modeling
// multiple users"), combining their repository rules per user name from
// rulesFor (missing users rank with no rules, i.e. neutrally). The shared
// context must have been applied with memberships for every user — use
// Context.CertainFor/AddFor to put several individuals into one snapshot.
func (s *System) RankGroup(users []string, target string, rulesFor map[string][]Rule, policy GroupPolicy) ([]GroupResult, error) {
	targetExpr, err := dl.Parse(target)
	if err != nil {
		return nil, err
	}
	return core.GroupRank(s.factorized, core.GroupRequest{
		Users:    users,
		Target:   targetExpr,
		RulesFor: rulesFor,
		Policy:   policy,
	})
}

// AnalyzeRules inspects the rule repository for duplicates, σ conflicts,
// context-subsumption overlaps and disjointness-unsatisfiable preferences
// under the system's TBox.
func (s *System) AnalyzeRules() []prefs.Finding {
	return s.repo.Analyze(s.loader.TBox())
}

// SaveSnapshot persists the rule repository into the database and dumps the
// whole database (event space, tables, views, indexes) as JSON to w.
func (s *System) SaveSnapshot(w io.Writer) error {
	if err := s.repo.Persist(s.db); err != nil {
		return err
	}
	return s.db.Dump(w)
}

// RestoreSystem rebuilds a System from a snapshot written by SaveSnapshot:
// data, event space, views, DL vocabulary and preference rules all survive
// the round trip. The history log and the current context do not (context
// is sensed fresh, §5).
func RestoreSystem(r io.Reader) (*System, error) {
	db := engine.New()
	if err := db.Restore(r); err != nil {
		return nil, err
	}
	loader := mapping.NewLoader(db, dl.NewTBox())
	// A snapshot taken with an applied context carries that context's ctx_*
	// declarations; the loader adopted the dl_ctx record for them, and this
	// advances the epoch counter past the restored names so fresh context
	// events cannot collide with them.
	situation.AdoptApplied(loader)
	repo, err := prefs.LoadRepository(db)
	if err != nil {
		return nil, err
	}
	sys := &System{
		db:         db,
		loader:     loader,
		repo:       repo,
		log:        history.NewLog(),
		naive:      core.NewNaiveRanker(loader),
		factorized: core.NewFactorizedRanker(loader),
		view:       core.NewViewRanker(loader),
		sampled:    core.NewSampledRanker(loader, 0, 1),
	}
	// Seed the assertion-event counter past every restored c_<n>/r_<n>
	// name: a fresh counter would regenerate those names, failing on a
	// different probability — or, worse, silently aliasing two logically
	// independent assertions onto one event when the probability matches.
	for _, d := range db.Space().Decls() {
		var n int64
		if _, err := fmt.Sscanf(d.Name, "c_%d", &n); err != nil {
			if _, err := fmt.Sscanf(d.Name, "r_%d", &n); err != nil {
				continue
			}
		}
		if n > sys.evSeq.Load() {
			sys.evSeq.Store(n)
		}
	}
	return sys, nil
}

// Query runs a SQL statement against the embedded database (the uniform
// declarative interface of §5).
func (s *System) Query(stmt string) (*QueryResult, error) { return s.db.Query(stmt) }

// RankQuery implements the paper's §5 integration of context ranking with
// the user's own query: the SQL query supplies the candidate tuples (its
// first column must be the individual id), the preference rules supply the
// context-aware score, and the result is the candidates reordered by
// descending preferencescore — equation (3) with the query-dependent part
// being 1 for tuples the query returned and 0 otherwise.
func (s *System) RankQuery(user, sqlQuery string, opts RankOptions) ([]Result, error) {
	res, err := s.db.Query(sqlQuery)
	if err != nil {
		return nil, err
	}
	if len(res.Cols) == 0 {
		return nil, fmt.Errorf("contextrank: query returned no columns")
	}
	candidates := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		if row[0].T != storage.TypeText {
			return nil, fmt.Errorf("contextrank: first query column must be a TEXT id, got %s", row[0].T)
		}
		candidates = append(candidates, row[0].S)
	}
	return s.RankCandidates(user, candidates, opts)
}

// Exec runs a SQL statement that may not return rows.
func (s *System) Exec(stmt string) (*QueryResult, error) { return s.db.Exec(stmt) }

// RecordEpisode appends a choice episode to the history log.
func (s *System) RecordEpisode(e Episode) error { return s.log.Append(e) }

// MineRules mines σ estimates from the history log (§6 "Mining/learning
// preferences") and converts each estimate with at least minSupport
// supporting episodes into a scored preference rule via the caller's
// feature-to-concept translations. Mined rules are returned, not
// auto-registered; call Rules().Add to adopt them.
func (s *System) MineRules(minSupport int, ctxConcept func(feature string) string, prefExpr func(feature string) string) ([]Rule, error) {
	if ctxConcept == nil || prefExpr == nil {
		return nil, fmt.Errorf("contextrank: MineRules requires translation callbacks")
	}
	ests := s.log.MineAll(minSupport)
	var out []Rule
	for _, est := range ests {
		ctxName := ctxConcept(est.ContextFeature)
		prefText := prefExpr(est.DocFeature)
		if ctxName == "" || prefText == "" {
			continue // caller filtered this feature out
		}
		pref, err := dl.Parse(prefText)
		if err != nil {
			return nil, fmt.Errorf("contextrank: mined preference %q: %w", prefText, err)
		}
		rule := Rule{
			Name:       fmt.Sprintf("mined-%s-%s", est.ContextFeature, est.DocFeature),
			Context:    dl.Atom(ctxName),
			Preference: pref,
			Sigma:      est.Sigma,
		}
		if err := rule.Validate(); err != nil {
			return nil, err
		}
		out = append(out, rule)
	}
	return out, nil
}

// NewIRIndex returns an empty feature index for the traditional
// (query-dependent) language-model score of §2.
func NewIRIndex() *ir.Index { return ir.NewIndex() }

// QueryDependentScore computes the Ponte–Croft language-model probability
// P(q|d) with Jelinek–Mercer smoothing λ over the given index.
func QueryDependentScore(ix *ir.Index, docID string, query []string, lambda float64) (float64, error) {
	return ir.Model{Index: ix, Lambda: lambda}.Score(docID, query)
}

// CombinedScore blends the query-dependent and context scores with the §6
// smoothing weight: lambda 1 = pure query, 0 = pure context.
func CombinedScore(queryDependent, contextScore, lambda float64) (float64, error) {
	return core.SmoothedScore(queryDependent, contextScore, lambda)
}
