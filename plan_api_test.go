package contextrank_test

import (
	"fmt"
	"math"
	"testing"

	contextrank "repro"
)

// planSystem builds a small catalog with two rules and an applied context.
func planSystem(t *testing.T) *contextrank.System {
	t.Helper()
	sys := contextrank.NewSystem()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sys.DeclareConcept("TvProgram"))
	must(sys.DeclareRole("hasGenre"))
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("tv%02d", i)
		must(sys.AssertConcept("TvProgram", id, 1))
		must(sys.AssertRole("hasGenre", id, fmt.Sprintf("g%d", i%4), 0.9))
	}
	for i := 0; i < 2; i++ {
		_, err := sys.AddRule(fmt.Sprintf("RULE r%d WHEN Ctx%d PREFER TvProgram AND EXISTS hasGenre.{g%d} WITH 0.8", i, i, i))
		must(err)
	}
	must(sys.SetContext(contextrank.NewContext("peter").Add("Ctx0", 0.9).Add("Ctx1", 0.7)))
	return sys
}

// TestCompileRankPlanAPI: one compiled plan must reproduce RankWith and
// RankQuery-style candidate rankings, and reject foreign algorithms.
func TestCompileRankPlanAPI(t *testing.T) {
	sys := planSystem(t)
	plan, err := sys.CompileRankPlan("peter")
	if err != nil {
		t.Fatal(err)
	}
	if plan.User() != "peter" || plan.Rules() != 2 {
		t.Fatalf("plan = user %q, %d rules", plan.User(), plan.Rules())
	}

	want, err := sys.RankWith("peter", "TvProgram", contextrank.RankOptions{Limit: 7, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.RankWithPlan(plan, "TvProgram", contextrank.RankOptions{Limit: 7, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
		}
		if got[i].Explanation == nil {
			t.Fatalf("result %d missing explanation", i)
		}
	}

	ids := []string{"tv00", "tv01", "tv05"}
	wantC, err := sys.RankCandidates("peter", ids, contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := sys.RankCandidatesWithPlan(plan, ids, contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotC) != len(wantC) {
		t.Fatalf("%d candidate results, want %d", len(gotC), len(wantC))
	}
	for i := range wantC {
		if gotC[i].ID != wantC[i].ID || math.Abs(gotC[i].Score-wantC[i].Score) > 1e-12 {
			t.Fatalf("candidate result %d: %+v vs %+v", i, gotC[i], wantC[i])
		}
	}

	if _, err := sys.RankWithPlan(plan, "TvProgram", contextrank.RankOptions{Algorithm: contextrank.AlgorithmNaive}); err == nil {
		t.Fatal("plan accepted the naive algorithm")
	}
	if _, err := sys.RankCandidatesWithPlan(plan, ids, contextrank.RankOptions{Algorithm: contextrank.AlgorithmView}); err == nil {
		t.Fatal("plan accepted the view algorithm")
	}
}

// TestRulesFingerprint: the fingerprint must change with the rule set and
// be stable otherwise.
func TestRulesFingerprint(t *testing.T) {
	sys := planSystem(t)
	fp1 := sys.RulesFingerprint()
	if fp1 != sys.RulesFingerprint() {
		t.Fatal("fingerprint not stable")
	}
	if _, err := sys.AddRule("RULE extra WHEN Ctx0 PREFER TvProgram WITH 0.6"); err != nil {
		t.Fatal(err)
	}
	fp2 := sys.RulesFingerprint()
	if fp2 == fp1 {
		t.Fatal("fingerprint unchanged after rule add")
	}
	if err := sys.Rules().Remove("extra"); err != nil {
		t.Fatal(err)
	}
	if sys.RulesFingerprint() != fp1 {
		t.Fatal("fingerprint did not return to the original after remove")
	}
}
