package contextrank

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/situation"
)

// TestEndToEndLifecycle drives one system through the whole lifecycle a
// deployment would see: schema, data, rules, sensed context, ranking,
// explanation, context switch, re-ranking, SQL inspection, snapshot,
// restore, and ranking again on the restored instance.
func TestEndToEndLifecycle(t *testing.T) {
	sys := NewSystem()
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(sys.DeclareConcept("TvProgram"))
	check(sys.DeclareRole("hasGenre", "hasSubject"))
	programs := []struct {
		id, role, val string
		p             float64
	}{
		{"traffic_7am", "hasSubject", "Traffic", 1.0},
		{"weather_7am", "hasSubject", "Weather", 1.0},
		{"news_7am", "hasSubject", "News", 0.95},
		{"oprah", "hasGenre", "HUMAN-INTEREST", 0.85},
		{"movie", "hasGenre", "THRILLER", 1.0},
	}
	for _, p := range programs {
		check(sys.AssertConcept("TvProgram", p.id, 1))
		check(sys.AssertRole(p.role, p.id, p.val, p.p))
	}
	for _, r := range []string{
		"RULE traffic WHEN Workday AND Morning PREFER TvProgram AND EXISTS hasSubject.{Traffic} WITH 0.8",
		"RULE weather WHEN Workday AND Morning PREFER TvProgram AND EXISTS hasSubject.{Weather} WITH 0.6",
		"RULE weekend WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8",
	} {
		if _, err := sys.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}

	// Workday morning: Figure 1's world. Traffic bulletin must rank first.
	check(sys.SetContext(NewContext("peter").Certain("Workday").Certain("Morning")))
	results, err := sys.RankWith("peter", "TvProgram", RankOptions{Explain: true})
	check(err)
	if results[0].ID != "traffic_7am" {
		t.Fatalf("workday morning top = %v", results[0])
	}
	// Figure 1's closing number: a program with neither feature scores
	// (1−0.8)(1−0.6) = 0.08.
	for _, r := range results {
		if r.ID == "movie" && math.Abs(r.Score-0.08) > 1e-9 {
			t.Fatalf("P(neither) = %g, want 0.08", r.Score)
		}
	}
	if len(results[0].Explanation.Rules) != 3 {
		t.Fatalf("explanation = %v", results[0].Explanation)
	}

	// Weekend: the ranking flips to human interest.
	check(sys.SetContext(NewContext("peter").Certain("Weekend")))
	results, err = sys.Rank("peter", "TvProgram")
	check(err)
	if results[0].ID != "oprah" {
		t.Fatalf("weekend top = %v", results[0])
	}

	// SQL inspection of the §5 uniform tabular view.
	n, err := sys.DB().QueryScalar("SELECT COUNT(*) FROM c_TvProgram")
	check(err)
	if n.I != 5 {
		t.Fatalf("programs = %d", n.I)
	}

	// Snapshot, restore, and rank on the restored system.
	var buf bytes.Buffer
	check(sys.SaveSnapshot(&buf))
	restored, err := RestoreSystem(&buf)
	check(err)
	check(restored.SetContext(NewContext("peter").Certain("Weekend")))
	again, err := restored.Rank("peter", "TvProgram")
	check(err)
	if again[0].ID != "oprah" || math.Abs(again[0].Score-results[0].Score) > 1e-9 {
		t.Fatalf("restored ranking differs: %v vs %v", again[0], results[0])
	}
}

// TestSensorPipelineToRanking wires simulated sensors straight into a
// ranking and checks that sensor uncertainty shows up as score mass.
func TestSensorPipelineToRanking(t *testing.T) {
	sys := NewSystem()
	if err := sys.DeclareConcept("Doc"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssertConcept("Doc", "d1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddRule("RULE k WHEN InKitchen PREFER Doc WITH 0.9"); err != nil {
		t.Fatal(err)
	}
	rank := func(acc float64) float64 {
		ctx, err := SenseContext("u", situation.LocationSensor{
			Rooms: []string{"InKitchen", "InHall"}, TrueRoom: "InKitchen", Accuracy: acc,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SetContext(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Rank("u", "Doc")
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Score
	}
	// Expected: acc·σ + (1−acc)·1 — the rule only fires with the sensed
	// kitchen probability.
	if s := rank(1.0); math.Abs(s-0.9) > 1e-9 {
		t.Fatalf("certain sensor: %g", s)
	}
	if s := rank(0.5); math.Abs(s-(0.5*0.9+0.5)) > 1e-9 {
		t.Fatalf("noisy sensor: %g", s)
	}
}

// TestConcurrentRanking checks that read-only ranking is safe to run from
// several goroutines against one system.
func TestConcurrentRanking(t *testing.T) {
	sys := buildTVTouch(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sys.Rank("peter", "TvProgram")
			if err != nil {
				errs <- err
				return
			}
			if res[0].ID != "Channel5News" {
				errs <- errUnexpected
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errUnexpected = errors.New("unexpected top result")
