package contextrank

import (
	"math"
	"testing"

	"repro/internal/situation"
)

// buildTVTouch assembles the paper's §4.2 example through the public API
// only.
func buildTVTouch(t testing.TB) *System {
	t.Helper()
	sys := NewSystem()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sys.DeclareConcept("TvProgram", "Weekend", "Breakfast"))
	must(sys.DeclareRole("hasGenre", "hasSubject"))
	for _, p := range []string{"Oprah", "BBCNews", "Channel5News", "MPFS"} {
		must(sys.AssertConcept("TvProgram", p, 1))
	}
	must(sys.AssertRole("hasGenre", "Oprah", "HUMAN-INTEREST", 0.85))
	must(sys.AssertRole("hasGenre", "Channel5News", "HUMAN-INTEREST", 0.95))
	must(sys.AssertRole("hasSubject", "BBCNews", "News", 1))
	must(sys.AssertRole("hasSubject", "Channel5News", "News", 0.85))
	if _, err := sys.AddRule("RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddRule("RULE R2 WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.9"); err != nil {
		t.Fatal(err)
	}
	must(sys.SetContext(NewContext("peter").Certain("Weekend").Certain("Breakfast")))
	return sys
}

func TestPublicAPIPaperExample(t *testing.T) {
	sys := buildTVTouch(t)
	want := map[string]float64{
		"Channel5News": 0.6006, "BBCNews": 0.18, "Oprah": 0.071, "MPFS": 0.02,
	}
	for _, alg := range []Algorithm{AlgorithmFactorized, AlgorithmNaive, AlgorithmView} {
		results, err := sys.RankWith("peter", "TvProgram", RankOptions{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(results) != 4 || results[0].ID != "Channel5News" {
			t.Fatalf("%s: results = %v", alg, results)
		}
		for _, r := range results {
			if math.Abs(r.Score-want[r.ID]) > 1e-9 {
				t.Fatalf("%s: score(%s) = %g", alg, r.ID, r.Score)
			}
		}
	}
}

func TestRankOptionsThresholdLimitExplain(t *testing.T) {
	sys := buildTVTouch(t)
	results, err := sys.RankWith("peter", "TvProgram", RankOptions{Threshold: 0.5, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Explanation == nil {
		t.Fatalf("results = %v", results)
	}
	results, err = sys.RankWith("peter", "TvProgram", RankOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	if _, err := sys.RankWith("peter", "TvProgram", RankOptions{Algorithm: "quantum"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRankTargetExpression(t *testing.T) {
	sys := buildTVTouch(t)
	// Rank only news programs: a real DL expression as target.
	results, err := sys.Rank("peter", "TvProgram AND EXISTS hasSubject.{News}")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	if _, err := sys.Rank("peter", "NOT ("); err == nil {
		t.Fatal("bad target expression accepted")
	}
}

func TestAssertValidation(t *testing.T) {
	sys := NewSystem()
	sys.DeclareConcept("C")
	sys.DeclareRole("r")
	if err := sys.AssertConcept("C", "x", 0); err == nil {
		t.Fatal("zero probability accepted")
	}
	if err := sys.AssertConcept("C", "x", 1.2); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := sys.AssertRole("r", "x", "y", -1); err == nil {
		t.Fatal("negative probability accepted")
	}
	if err := sys.AssertConcept("Ghost", "x", 1); err == nil {
		t.Fatal("undeclared concept accepted")
	}
}

func TestAddRuleVocabularyValidation(t *testing.T) {
	sys := NewSystem()
	sys.DeclareConcept("TvProgram")
	if _, err := sys.AddRule("WHEN Weekend PREFER Movie WITH 0.5"); err == nil {
		t.Fatal("undeclared preference concept accepted")
	}
	if _, err := sys.AddRule("WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{X} WITH 0.5"); err == nil {
		t.Fatal("undeclared role accepted")
	}
	// Context concepts auto-declare (they arrive with future contexts).
	if _, err := sys.AddRule("WHEN Evening PREFER TvProgram WITH 0.5"); err != nil {
		t.Fatal(err)
	}
}

func TestDirectSQLAccess(t *testing.T) {
	sys := buildTVTouch(t)
	res, err := sys.Query("SELECT COUNT(*) FROM c_TvProgram")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 4 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if _, err := sys.Exec("CREATE TABLE scratch (x INT)"); err != nil {
		t.Fatal(err)
	}
}

func TestContextSwitchChangesRanking(t *testing.T) {
	sys := buildTVTouch(t)
	// Weekday evening: neither rule context holds; everything scores 1.
	if err := sys.SetContext(NewContext("peter").Certain("Workday")); err != nil {
		t.Fatal(err)
	}
	results, err := sys.Rank("peter", "TvProgram")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if math.Abs(r.Score-1) > 1e-9 {
			t.Fatalf("score = %v", r)
		}
	}
	// Back to the weekend breakfast: Table 1 ranking returns.
	if err := sys.SetContext(NewContext("peter").Certain("Weekend").Certain("Breakfast")); err != nil {
		t.Fatal(err)
	}
	results, _ = sys.Rank("peter", "TvProgram")
	if results[0].ID != "Channel5News" {
		t.Fatalf("results = %v", results)
	}
}

func TestMineRulesFromHistory(t *testing.T) {
	sys := buildTVTouch(t)
	docs := []HistoryDoc{
		{ID: "t", Features: map[string]bool{"traffic": true}},
		{ID: "w", Features: map[string]bool{"weather": true}},
	}
	for i := 0; i < 10; i++ {
		ep := Episode{
			ContextFeatures: map[string]bool{"WorkdayMorning": true},
			Available:       docs,
			Chosen:          map[string]bool{},
		}
		if i < 8 {
			ep.Chosen["t"] = true
		}
		if err := sys.RecordEpisode(ep); err != nil {
			t.Fatal(err)
		}
	}
	rules, err := sys.MineRules(5,
		func(f string) string { return "Morning" },
		func(f string) string {
			if f == "traffic" {
				return "TvProgram AND EXISTS hasSubject.{Traffic}"
			}
			return "" // skip other features
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || math.Abs(rules[0].Sigma-0.8) > 1e-9 {
		t.Fatalf("mined = %v", rules)
	}
	if _, err := sys.MineRules(1, nil, nil); err == nil {
		t.Fatal("nil callbacks accepted")
	}
}

func TestIRIntegration(t *testing.T) {
	sys := buildTVTouch(t)
	ix := NewIRIndex()
	// Document features double as IR terms.
	if err := ix.Add(IRDocument{ID: "Channel5News", Features: map[string]int{"news": 2, "human-interest": 1}}); err != nil {
		t.Fatal(err)
	}
	qd, err := QueryDependentScore(ix, "Channel5News", []string{"news"}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := sys.Rank("peter", "TvProgram")
	combined, err := CombinedScore(qd, results[0].Score, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if combined <= 0 || combined > 1 {
		t.Fatalf("combined = %g", combined)
	}
}

func TestSenseContextThroughFacade(t *testing.T) {
	ctx, err := SenseContext("peter", situation.ClockSensor{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Measurements) == 0 {
		t.Fatal("no measurements")
	}
}
